// Package timeseries stores the timestamped measurements that beesim's
// simulated deployment produces: power draw, in-hive temperature and
// humidity, battery state of charge, and the weather trace.
//
// Figure 2 of the paper plots a full week of such series at once; this
// package provides the container plus the resampling/windowing operations
// needed to turn a high-rate simulation trace into the figure's
// per-interval summaries, and a CSV codec so every figure can be exported
// for external plotting.
package timeseries

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Point is one observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only ordered sequence of observations.
type Series struct {
	Name   string
	Unit   string
	points []Point
}

// New creates an empty series with a display name and unit label.
func New(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Append adds an observation. Out-of-order appends are rejected so that
// every consumer can rely on monotone timestamps.
func (s *Series) Append(t time.Time, v float64) error {
	if n := len(s.points); n > 0 && t.Before(s.points[n-1].T) {
		return fmt.Errorf("timeseries %q: append at %v before last point %v",
			s.Name, t, s.points[n-1].T)
	}
	s.points = append(s.points, Point{T: t, V: v})
	return nil
}

// MustAppend is Append for callers generating inherently ordered data
// (e.g. a simulation clock); it panics on an ordering violation, which in
// that context is a programming error.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th observation.
func (s *Series) At(i int) Point { return s.points[i] }

// Points returns the underlying observations. The slice must not be
// mutated by the caller.
func (s *Series) Points() []Point { return s.points }

// Span returns the time covered by the series, or zeros when empty.
func (s *Series) Span() (start, end time.Time) {
	if len(s.points) == 0 {
		return
	}
	return s.points[0].T, s.points[len(s.points)-1].T
}

// Values returns a copy of the observation values in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.points))
	for i, p := range s.points {
		vs[i] = p.V
	}
	return vs
}

// ValueAt returns the last observation at or before t (sample-and-hold
// interpolation) and whether one exists.
func (s *Series) ValueAt(t time.Time) (float64, bool) {
	i := sort.Search(len(s.points), func(i int) bool {
		return s.points[i].T.After(t)
	})
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// Slice returns the sub-series with start <= t < end.
func (s *Series) Slice(start, end time.Time) *Series {
	lo := sort.Search(len(s.points), func(i int) bool {
		return !s.points[i].T.Before(start)
	})
	hi := sort.Search(len(s.points), func(i int) bool {
		return !s.points[i].T.Before(end)
	})
	out := New(s.Name, s.Unit)
	out.points = append(out.points, s.points[lo:hi]...)
	return out
}

// Agg selects how Resample combines the points falling in a window.
type Agg int

// Aggregation modes.
const (
	AggMean Agg = iota
	AggSum
	AggMax
	AggMin
	AggLast
	AggCount
)

// Resample buckets the series into fixed windows of width w starting at
// the first observation and combines each bucket with the aggregation
// mode. Empty windows are skipped (the simulated system is off at night;
// Figure 2 shows gaps, not zeros). The output point carries the window
// start time.
func (s *Series) Resample(w time.Duration, mode Agg) (*Series, error) {
	if w <= 0 {
		return nil, errors.New("timeseries: non-positive resample window")
	}
	out := New(s.Name, s.Unit)
	if len(s.points) == 0 {
		return out, nil
	}
	origin := s.points[0].T
	i := 0
	for i < len(s.points) {
		bucket := s.points[i].T.Sub(origin) / w
		start := origin.Add(bucket * w)
		end := start.Add(w)
		var sum, max, min, last float64
		count := 0
		for i < len(s.points) && s.points[i].T.Before(end) {
			v := s.points[i].V
			if count == 0 {
				max, min = v, v
			} else {
				if v > max {
					max = v
				}
				if v < min {
					min = v
				}
			}
			sum += v
			last = v
			count++
			i++
		}
		var v float64
		switch mode {
		case AggMean:
			v = sum / float64(count)
		case AggSum:
			v = sum
		case AggMax:
			v = max
		case AggMin:
			v = min
		case AggLast:
			v = last
		case AggCount:
			v = float64(count)
		default:
			return nil, fmt.Errorf("timeseries: unknown aggregation %d", mode)
		}
		out.points = append(out.points, Point{T: start, V: v})
	}
	return out, nil
}

// Integrate returns the trapezoidal integral of the series over its span,
// in value-seconds. Integrating a power series (watts) yields joules,
// which is how trace energies are computed from sampled power.
func (s *Series) Integrate() float64 {
	var total float64
	for i := 1; i < len(s.points); i++ {
		dt := s.points[i].T.Sub(s.points[i-1].T).Seconds()
		total += (s.points[i].V + s.points[i-1].V) / 2 * dt
	}
	return total
}

// Gaps returns the intervals between consecutive points longer than min.
// Figure 2a's night-time outages appear as such gaps.
func (s *Series) Gaps(min time.Duration) []struct{ Start, End time.Time } {
	var out []struct{ Start, End time.Time }
	for i := 1; i < len(s.points); i++ {
		if d := s.points[i].T.Sub(s.points[i-1].T); d > min {
			out = append(out, struct{ Start, End time.Time }{s.points[i-1].T, s.points[i].T})
		}
	}
	return out
}

// WriteCSV writes one or more series sharing a time column. Series are
// sampled with sample-and-hold at the union of all timestamps.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return errors.New("timeseries: no series to write")
	}
	cw := csv.NewWriter(w)
	header := []string{"time"}
	for _, s := range series {
		col := s.Name
		if s.Unit != "" {
			col += " (" + s.Unit + ")"
		}
		header = append(header, col)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Union of timestamps.
	stampSet := map[int64]time.Time{}
	for _, s := range series {
		for _, p := range s.points {
			stampSet[p.T.UnixNano()] = p.T
		}
	}
	stamps := make([]time.Time, 0, len(stampSet))
	for _, t := range stampSet {
		stamps = append(stamps, t)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].Before(stamps[j]) })
	row := make([]string, 1+len(series))
	for _, t := range stamps {
		row[0] = t.UTC().Format(time.RFC3339Nano)
		for i, s := range series {
			if v, ok := s.ValueAt(t); ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a single-series CSV previously produced by WriteCSV with
// one series (time + one value column).
func ReadCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("timeseries: empty CSV")
	}
	if len(rows[0]) != 2 {
		return nil, fmt.Errorf("timeseries: want 2 columns, got %d", len(rows[0]))
	}
	s := New(rows[0][1], "")
	for _, row := range rows[1:] {
		t, err := time.Parse(time.RFC3339Nano, row[0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: bad timestamp %q: %w", row[0], err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: bad value %q: %w", row[1], err)
		}
		if err := s.Append(t, v); err != nil {
			return nil, err
		}
	}
	return s, nil
}
