package hivenet

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"beesim/internal/audio"
	"beesim/internal/hive"
	"beesim/internal/obs"
	"beesim/internal/proto"
)

// FuzzDashboardHTTP throws arbitrary methods and request targets at
// the dashboard mux, including the query-parameter parsers behind
// /api/records (hive, kind, hours). The server is primed with one real
// upload cycle so every handler has data to serve. The invariant is
// simple: any parseable request gets an HTTP response, never a panic.
func FuzzDashboardHTTP(f *testing.F) {
	s, err := NewServer("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		f.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	f.Cleanup(func() { _ = s.Close() })

	agent, err := Dial(s.Addr(), DefaultAgentConfig("fuzz-1"))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		f.Fatal(err)
	}
	_ = agent.Close()
	d := NewDashboard(s)

	seeds := []struct{ method, target string }{
		{http.MethodGet, "/"},
		{http.MethodGet, "/api/stats"},
		{http.MethodGet, "/api/hives"},
		{http.MethodGet, "/api/ledger"},
		{http.MethodGet, "/metrics"},
		{http.MethodGet, "/api/metrics"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=result"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=sensor&hours=0.5"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=banana"},
		{http.MethodGet, "/api/records?hours=-1"},
		{http.MethodGet, "/api/records?hive=%00&hours=1e309"},
		{http.MethodPost, "/api/records?hive=fuzz-1"},
		{http.MethodDelete, "/nope"},
		{http.MethodGet, "/api/records?hive=a&hours=NaN"},
	}
	for _, s := range seeds {
		f.Add(s.method, s.target)
	}
	f.Fuzz(func(t *testing.T, method, target string) {
		u, err := url.ParseRequestURI(target)
		if err != nil {
			return // unparseable target: nothing for the mux to see
		}
		req := &http.Request{
			Method:     method,
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Host:       "fuzz.test",
			RemoteAddr: "198.51.100.7:1234",
			Body:       http.NoBody,
		}
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, req)
		if rec.Code < 100 || rec.Code > 599 {
			t.Errorf("%s %q: implausible status %d", method, target, rec.Code)
		}
	})
}

// scriptConn is a net.Conn whose reads come from a scripted byte
// stream and whose writes are discarded — enough to drive the server's
// session loop without a socket.
type scriptConn struct{ r io.Reader }

func (c *scriptConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *scriptConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *scriptConn) Close() error                     { return nil }
func (c *scriptConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *scriptConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *scriptConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

// encodeFrame renders one frame to bytes via the real encoder.
func encodeFrame(t testing.TB, typ proto.Type, body any, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := proto.Encode(&buf, typ, body, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzAdmission holds the two shared fuzz servers: one idle (uploads
// are admitted) and one with its single inflight slot permanently
// held, so every upload takes the typed-reject path. Built once per
// process — detector training is far too slow per fuzz execution.
var fuzzAdmission struct {
	once  sync.Once
	err   error
	idle  *Server
	busy  *Server
	hello []byte
}

func fuzzAdmissionSetup() error {
	fuzzAdmission.once.Do(func() {
		mk := func() (*Server, error) {
			cfg := DefaultServerConfig()
			cfg.TrainCorpus = 12
			cfg.ClipSeconds = 0.25
			cfg.Slots = 1
			cfg.MaxParallel = 1 << 30 // fuzz opens one session per execution; slots are never released
			cfg.Metrics = obs.NewRegistry()
			cfg.Admission = AdmissionConfig{
				MaxInflightUploads: 1,
				MaxArchiveRecords:  8,
				RetryAfter:         time.Second,
			}
			return NewServer("127.0.0.1:0", cfg)
		}
		if fuzzAdmission.idle, fuzzAdmission.err = mk(); fuzzAdmission.err != nil {
			return
		}
		if fuzzAdmission.busy, fuzzAdmission.err = mk(); fuzzAdmission.err != nil {
			return
		}
		// A permanently stuck upload: the busy server's budget is full
		// before any fuzzed frame arrives.
		fuzzAdmission.busy.inflight.Add(1)
		var buf bytes.Buffer
		fuzzAdmission.err = proto.Encode(&buf, proto.TypeHello,
			proto.Hello{HiveID: "fuzz", WakePeriodSeconds: 300, Version: 1}, nil)
		fuzzAdmission.hello = buf.Bytes()
	})
	return fuzzAdmission.err
}

// FuzzAdmissionFrame replays arbitrary post-hello frame bytes through
// the server session loop on both an idle and a saturated server:
// truncated frames, oversized length prefixes and malformed bodies
// must produce session errors, never panics, and must always release
// the inflight budget they were admitted under.
func FuzzAdmissionFrame(f *testing.F) {
	if err := fuzzAdmissionSetup(); err != nil {
		f.Fatal(err)
	}

	clip := make([]float64, audio.SampleRate/4)
	upload := encodeFrame(f, proto.TypeAudioUpload, proto.AudioUpload{
		HiveID: "fuzz", Time: time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC),
		SampleRate: audio.SampleRate, Samples: len(clip),
	}, proto.PCMEncode(clip))
	sensor := encodeFrame(f, proto.TypeSensorReport, proto.SensorReport{HiveID: "fuzz"}, nil)
	bye := encodeFrame(f, proto.TypeBye, nil, nil)

	f.Add(upload)
	f.Add(append(append([]byte{}, sensor...), bye...))
	f.Add(upload[:len(upload)/2]) // truncated mid-payload
	f.Add(upload[:13])            // header only
	// Oversized declared raw length with no data behind it.
	over := make([]byte, 13)
	binary.BigEndian.PutUint32(over[0:4], proto.Magic)
	over[4] = byte(proto.TypeAudioUpload)
	binary.BigEndian.PutUint32(over[9:13], 1<<31)
	f.Add(over)
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, s := range []*Server{fuzzAdmission.idle, fuzzAdmission.busy} {
			conn := &scriptConn{r: io.MultiReader(
				bytes.NewReader(fuzzAdmission.hello), bytes.NewReader(data))}
			_ = s.handle(conn) // session errors are expected; panics are the bug
		}
		// The budget always drains: admitted uploads release their slot
		// on every exit path, so the idle server returns to zero and
		// the busy one holds exactly its pinned slot.
		if got := fuzzAdmission.idle.inflight.Load(); got != 0 {
			t.Fatalf("idle server leaked %d inflight slots", got)
		}
		if got := fuzzAdmission.busy.inflight.Load(); got != 1 {
			t.Fatalf("busy server inflight = %d, want the 1 pinned slot", got)
		}
		// Shed-oldest keeps the archive bounded no matter the input.
		for _, s := range []*Server{fuzzAdmission.idle, fuzzAdmission.busy} {
			if n := s.Archive().Len(); n > 8 {
				t.Fatalf("archive grew to %d past cap 8", n)
			}
		}
	})
}
