package hivenet

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"beesim/internal/hive"
)

// FuzzDashboardHTTP throws arbitrary methods and request targets at
// the dashboard mux, including the query-parameter parsers behind
// /api/records (hive, kind, hours). The server is primed with one real
// upload cycle so every handler has data to serve. The invariant is
// simple: any parseable request gets an HTTP response, never a panic.
func FuzzDashboardHTTP(f *testing.F) {
	s, err := NewServer("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		f.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	f.Cleanup(func() { _ = s.Close() })

	agent, err := Dial(s.Addr(), DefaultAgentConfig("fuzz-1"))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		f.Fatal(err)
	}
	_ = agent.Close()
	d := NewDashboard(s)

	seeds := []struct{ method, target string }{
		{http.MethodGet, "/"},
		{http.MethodGet, "/api/stats"},
		{http.MethodGet, "/api/hives"},
		{http.MethodGet, "/api/ledger"},
		{http.MethodGet, "/metrics"},
		{http.MethodGet, "/api/metrics"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=result"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=sensor&hours=0.5"},
		{http.MethodGet, "/api/records?hive=fuzz-1&kind=banana"},
		{http.MethodGet, "/api/records?hours=-1"},
		{http.MethodGet, "/api/records?hive=%00&hours=1e309"},
		{http.MethodPost, "/api/records?hive=fuzz-1"},
		{http.MethodDelete, "/nope"},
		{http.MethodGet, "/api/records?hive=a&hours=NaN"},
	}
	for _, s := range seeds {
		f.Add(s.method, s.target)
	}
	f.Fuzz(func(t *testing.T, method, target string) {
		u, err := url.ParseRequestURI(target)
		if err != nil {
			return // unparseable target: nothing for the mux to see
		}
		req := &http.Request{
			Method:     method,
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Host:       "fuzz.test",
			RemoteAddr: "198.51.100.7:1234",
			Body:       http.NoBody,
		}
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, req)
		if rec.Code < 100 || rec.Code > 599 {
			t.Errorf("%s %q: implausible status %d", method, target, rec.Code)
		}
	})
}
