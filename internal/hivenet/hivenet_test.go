package hivenet

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/routine"
	"beesim/internal/store"
)

// startServer boots a server on a loopback port and returns it with a
// cleanup hook.
func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", ServerConfig{MaxParallel: 0, Slots: 5, TrainCorpus: 20, ClipSeconds: 1}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewServer("127.0.0.1:0", ServerConfig{MaxParallel: 5, Slots: 5, TrainCorpus: 2, ClipSeconds: 1}); err == nil {
		t.Error("tiny corpus accepted")
	}
}

func TestEndToEndEdgeCloudCycle(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	if s.DetectorAccuracy() < 0.8 {
		t.Fatalf("server detector accuracy = %v", s.DetectorAccuracy())
	}

	cfg := DefaultAgentConfig("cachan-1")
	cfg.Seed = 77
	agent, err := Dial(s.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	now := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)
	res, err := agent.RunCycle(hive.QueenPresent, 0.7, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputedAt != "cloud" {
		t.Fatalf("computed at %q, want cloud", res.ComputedAt)
	}
	if !res.QueenPresent {
		t.Error("queen-present clip classified queenless")
	}
	if res.Confidence < 0 || res.Confidence > 1 {
		t.Fatalf("confidence = %v", res.Confidence)
	}
	if res.HiveID != "cachan-1" || !res.Time.Equal(now) {
		t.Fatalf("result identity lost: %+v", res)
	}

	res, err = agent.RunCycle(hive.QueenLost, 0.7, now.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.QueenPresent {
		t.Error("queenless clip classified queen-present")
	}

	st := s.Stats()
	if st.Uploads != 2 || st.Reports != 2 || st.Sessions != 1 {
		t.Fatalf("server stats = %+v", st)
	}
	// Each upload is one receive+execute burst: (68.8-44.6)*15 + (63-44.6)*0.1 ≈ 364.8 J.
	wantBurst := 2 * 364.84
	if math.Abs(float64(st.BurstEnergy)-wantBurst) > 2 {
		t.Fatalf("burst energy = %v, want ~%v J", st.BurstEnergy, wantBurst)
	}
}

func TestEndToEndEdgeOnlyCycle(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	cfg := DefaultAgentConfig("lyon-3")
	cfg.Placement = routine.EdgeOnly
	cfg.Seed = 5
	agent, err := Dial(s.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	res, err := agent.RunCycle(hive.QueenPresent, 0.8, time.Now().UTC())
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputedAt != "edge" {
		t.Fatalf("computed at %q, want edge", res.ComputedAt)
	}
	if !res.QueenPresent {
		t.Error("edge model misclassified a queen-present clip")
	}
	st := s.Stats()
	if st.Uploads != 0 {
		t.Fatalf("edge placement caused %d uploads", st.Uploads)
	}
	if st.Reports != 2 { // sensor report + archived result
		t.Fatalf("reports = %d, want 2", st.Reports)
	}
	// Edge energy ledger: collect + SVM inference + send results + shutdown.
	want := 131.8 + 98.9 + 3.0 + 21.0
	if math.Abs(float64(agent.EdgeEnergy())-want) > 0.5 {
		t.Fatalf("edge energy = %v, want ~%v J", agent.EdgeEnergy(), want)
	}
}

func TestEdgeCloudEnergyLedger(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	agent, err := Dial(s.Addr(), DefaultAgentConfig("h1"))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.RunCycle(hive.QueenPresent, 0.5, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	// Table II's active rows: collect 131.8 + send audio 37.3 + shutdown 21.0.
	want := 131.8 + 37.3 + 21.0
	if math.Abs(float64(agent.EdgeEnergy())-want) > 0.5 {
		t.Fatalf("edge energy = %v, want ~%v J", agent.EdgeEnergy(), want)
	}
	if agent.Cycles() != 1 {
		t.Fatalf("cycles = %d", agent.Cycles())
	}
	if _, ok := agent.LastResult(); !ok {
		t.Fatal("no last result recorded")
	}
}

func TestSlotAssignmentSequentialFill(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxParallel = 2
	cfg.Slots = 3
	s := startServer(t, cfg)

	var agents []*Agent
	t.Cleanup(func() {
		for _, a := range agents {
			_ = a.Close()
		}
	})
	wantSlots := []int{0, 0, 1, 1, 2, 2}
	for i, want := range wantSlots {
		a, err := Dial(s.Addr(), DefaultAgentConfig("h"+string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		if a.Slot() != want {
			t.Fatalf("agent %d slot = %d, want %d (sequential fill)", i, a.Slot(), want)
		}
	}
	// Capacity exhausted: the 7th hive is refused.
	if _, err := Dial(s.Addr(), DefaultAgentConfig("overflow")); err == nil {
		t.Fatal("server over capacity accepted a hive")
	} else if !strings.Contains(err.Error(), "full") {
		t.Fatalf("refusal error = %v", err)
	}
}

func TestConcurrentAgents(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxParallel = 10
	cfg.Slots = 4
	s := startServer(t, cfg)

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acfg := DefaultAgentConfig("concurrent")
			acfg.Seed = uint64(100 + i)
			a, err := Dial(s.Addr(), acfg)
			if err != nil {
				errs <- err
				return
			}
			defer a.Close()
			for c := 0; c < 3; c++ {
				if _, err := a.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Sessions != n {
		t.Fatalf("sessions = %d, want %d", st.Sessions, n)
	}
	if st.Uploads != 3*n {
		t.Fatalf("uploads = %d, want %d", st.Uploads, 3*n)
	}
}

func TestAgentValidation(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	bad := DefaultAgentConfig("")
	if _, err := Dial(s.Addr(), bad); err == nil {
		t.Error("empty hive id accepted")
	}
	bad = DefaultAgentConfig("x")
	bad.ClipSeconds = 0
	if _, err := Dial(s.Addr(), bad); err == nil {
		t.Error("zero clip length accepted")
	}
}

func TestAgentCloseIsIdempotent(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	a, err := Dial(s.Addr(), DefaultAgentConfig("h"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if _, err := a.RunCycle(hive.QueenPresent, 0.5, time.Now()); err == nil {
		t.Fatal("cycle on closed agent accepted")
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after close")
	}
}

func TestArchiveRecordsSessions(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	agent, err := Dial(s.Addr(), DefaultAgentConfig("arch-1"))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	now := time.Date(2023, 4, 20, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := agent.RunCycle(hive.QueenPresent, 0.6, now.Add(time.Duration(i)*5*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	arch := s.Archive()
	sensors, err := arch.Query("arch-1", now, now.Add(time.Hour), store.KindSensor)
	if err != nil {
		t.Fatal(err)
	}
	if len(sensors) != 3 {
		t.Fatalf("archived sensor reports = %d, want 3", len(sensors))
	}
	results, err := arch.Query("arch-1", now, now.Add(time.Hour), store.KindResult)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("archived results = %d, want 3", len(results))
	}
	if results[0].Text["computed_at"] != "cloud" {
		t.Fatalf("result provenance = %q", results[0].Text["computed_at"])
	}
	if results[0].Fields["queen_present"] != 1 {
		t.Fatalf("verdict fields = %v", results[0].Fields)
	}
}

func TestArchivePersistsToDisk(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.ArchivePath = filepath.Join(t.TempDir(), "apiary.log")
	s := startServer(t, cfg)
	agent, err := Dial(s.Addr(), DefaultAgentConfig("disk-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.RunCycle(hive.QueenLost, 0.6, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	agent.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := store.Open(cfg.ArchivePath)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() < 2 { // sensor report + verdict
		t.Fatalf("persisted records = %d, want >= 2", re.Len())
	}
	rec, ok := re.Latest("disk-1", store.KindResult)
	if !ok || rec.Fields["queen_present"] != 0 {
		t.Fatalf("persisted verdict = %+v, %v", rec, ok)
	}
}

// TestListenFailureClosesArchive hands NewServer an unlistenable
// address: the freshly opened archive must be closed (and its file left
// reusable) rather than leaked with the error.
func TestListenFailureClosesArchive(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.ArchivePath = filepath.Join(t.TempDir(), "apiary.log")
	if _, err := NewServer("127.0.0.1", cfg); err == nil { // no port: Listen must fail
		t.Fatal("NewServer on a portless address succeeded")
	}
	re, err := store.Open(cfg.ArchivePath)
	if err != nil {
		t.Fatalf("archive unusable after failed start: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
