package hivenet

import (
	"net"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/proto"
)

// These tests throw malformed traffic at the server and verify it sheds
// the bad session without disturbing well-behaved agents.

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func TestServerRejectsGarbageHandshake(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	conn := rawDial(t, s.Addr())
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection promptly.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // closed or deadline: either way the session ended
		}
	}
	// And a legitimate agent still gets served.
	agent, err := Dial(s.Addr(), DefaultAgentConfig("after-garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsWrongFirstFrame(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	conn := rawDial(t, s.Addr())
	// A syntactically valid frame of the wrong type opens the session.
	if err := proto.Encode(conn, proto.TypeSensorReport, proto.SensorReport{
		HiveID: "rude", Time: time.Now()}, nil); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := proto.Decode(conn)
	if err != nil {
		t.Fatalf("no error frame before drop: %v", err)
	}
	if f.Type != proto.TypeError {
		t.Fatalf("reply = %v, want error", f.Type)
	}
}

func TestServerRejectsSampleCountMismatch(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	conn := rawDial(t, s.Addr())
	if err := proto.Encode(conn, proto.TypeHello, proto.Hello{
		HiveID: "liar", WakePeriodSeconds: 300, Version: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Decode(conn); err != nil { // welcome
		t.Fatal(err)
	}
	// Declare 1000 samples but ship 10.
	raw := proto.PCMEncode(make([]float64, 10))
	if err := proto.Encode(conn, proto.TypeAudioUpload, proto.AudioUpload{
		HiveID: "liar", Time: time.Now(), SampleRate: 22050, Samples: 1000,
	}, raw); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := proto.Decode(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeError {
		t.Fatalf("reply = %v, want error", f.Type)
	}
}

func TestServerRejectsOddPCM(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	conn := rawDial(t, s.Addr())
	if err := proto.Encode(conn, proto.TypeHello, proto.Hello{
		HiveID: "odd", WakePeriodSeconds: 300, Version: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Decode(conn); err != nil {
		t.Fatal(err)
	}
	if err := proto.Encode(conn, proto.TypeAudioUpload, proto.AudioUpload{
		HiveID: "odd", Time: time.Now(), SampleRate: 22050, Samples: 1,
	}, []byte{0x01}); err != nil { // one byte: not valid 16-bit PCM
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := proto.Decode(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeError {
		t.Fatalf("reply = %v, want error", f.Type)
	}
}

func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	// Connect, say hello, then vanish mid-session.
	conn := rawDial(t, s.Addr())
	if err := proto.Encode(conn, proto.TypeHello, proto.Hello{
		HiveID: "ghost", WakePeriodSeconds: 300, Version: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Decode(conn); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The server keeps serving.
	agent, err := Dial(s.Addr(), DefaultAgentConfig("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if _, err := agent.RunCycle(hive.QueenLost, 0.5, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	if !agentResultQueenless(t, agent) {
		t.Fatal("verdict lost after another session crashed")
	}
}

func agentResultQueenless(t *testing.T, a *Agent) bool {
	t.Helper()
	res, ok := a.LastResult()
	if !ok {
		t.Fatal("no result")
	}
	return !res.QueenPresent
}
