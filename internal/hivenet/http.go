package hivenet

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"beesim/internal/obs"
	"beesim/internal/slo"
	"beesim/internal/store"
)

// This file gives the cloud service a beekeeper-facing HTTP dashboard:
// JSON endpoints over the server's counters and archive, plus a minimal
// HTML overview. Mount it with NewDashboard and any net/http server.

// Dashboard serves monitoring endpoints for a running Server.
type Dashboard struct {
	srv *Server
	mux *http.ServeMux

	// Request metrics; nil-safe no-ops when the server has no registry.
	gInFlight *obs.Gauge

	// SLO evaluation state, armed by SetSLO.
	sloSpec  *slo.Spec
	sloStart time.Time
}

// NewDashboard wraps a server with its HTTP monitoring surface:
//
//	GET /            HTML overview
//	GET /api/stats   server counters (JSON)
//	GET /api/hives   known hive ids (JSON)
//	GET /api/records?hive=ID[&kind=sensor|result][&hours=N]
//	GET /api/metrics metrics registry snapshot (JSON; 404 when disabled)
//	GET /metrics     metrics registry snapshot (text; 404 when disabled)
//	GET /api/ledger  energy ledger export (JSONL; 404 when disabled)
//	GET /api/slo     SLO evaluation report (JSON; 404 until SetSLO)
//	GET /api/trace/{id}  one trace's events, Chrome trace_event JSON
//	                     (404 when tracing is disabled or id unknown)
//	GET /api/slowest     slowest-upload exemplars, slowest first (JSON)
//
// Every /api/* response carries Content-Type: application/json (the
// ledger export overrides to application/jsonl) and Cache-Control:
// no-store, so browsers and proxies never serve stale monitoring data.
//
// When the server was configured with a metrics registry, every request
// is counted and timed (hivenet_http_requests_total.<handler>,
// hivenet_http_request_seconds.<handler>) and the in-flight gauge
// hivenet_http_in_flight tracks concurrency.
func NewDashboard(srv *Server) *Dashboard {
	d := &Dashboard{
		srv:       srv,
		mux:       http.NewServeMux(),
		gInFlight: srv.Metrics().Gauge(MetricHTTPInFlight),
	}
	d.mux.HandleFunc("/", d.instrument("index", d.handleIndex))
	d.mux.HandleFunc("/api/stats", d.instrument("stats", apiHeaders(d.handleStats)))
	d.mux.HandleFunc("/api/hives", d.instrument("hives", apiHeaders(d.handleHives)))
	d.mux.HandleFunc("/api/records", d.instrument("records", apiHeaders(d.handleRecords)))
	d.mux.HandleFunc("/api/metrics", d.instrument("metrics", apiHeaders(d.handleMetricsJSON)))
	d.mux.HandleFunc("/metrics", d.instrument("metrics", d.handleMetricsText))
	d.mux.HandleFunc("/api/ledger", d.instrument("ledger", apiHeaders(d.handleLedger)))
	d.mux.HandleFunc("/api/slo", d.instrument("slo", apiHeaders(d.handleSLO)))
	d.mux.HandleFunc("/api/trace/", d.instrument("trace", apiHeaders(d.handleTrace)))
	d.mux.HandleFunc("/api/slowest", d.instrument("slowest", apiHeaders(d.handleSlowest)))
	return d
}

// apiHeaders pins the response headers every /api/* endpoint must
// carry: an explicit JSON content type (handlers with a different body
// format override it before writing) and no-store caching, so a
// browser polling the dashboard never shows stale counters. http.Error
// replaces the content type on error paths; Cache-Control survives.
func apiHeaders(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		h(w, r)
	}
}

// SetSLO arms GET /api/slo: every request evaluates the spec against
// the server's live metrics snapshot and ledger and returns the full
// report (pass/fail per objective with error-budget burn) as JSON.
// Call it once, before the dashboard starts serving. Per-day energy
// budgets are prorated over the time elapsed since SetSLO.
func (d *Dashboard) SetSLO(spec slo.Spec) {
	d.sloSpec = &spec
	d.sloStart = time.Now() //beelint:allow walltime live dashboard SLO windows are wall-clock by nature
}

// instrument wraps a handler with request counting, wall-clock duration
// observation and in-flight tracking. With observability disabled the
// handler is returned untouched, so an unobserved server reads no wall
// clock per request.
func (d *Dashboard) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := d.srv.Metrics()
	if m == nil {
		return h
	}
	requests := m.Counter(MetricHTTPRequests + "." + name)
	seconds := m.Histogram(MetricHTTPSeconds + "." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //beelint:allow walltime real HTTP request latency for the live dashboard's metrics
		d.gInFlight.Add(1)
		defer func() {
			d.gInFlight.Add(-1)
			requests.Inc()
			seconds.Observe(time.Since(start).Seconds()) //beelint:allow walltime real HTTP request latency for the live dashboard's metrics
		}()
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (d *Dashboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mux.ServeHTTP(w, r)
}

func (d *Dashboard) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	m := d.srv.Metrics()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if m == nil {
		http.Error(w, "metrics disabled (start the server with a registry)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := m.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *Dashboard) handleMetricsText(w http.ResponseWriter, r *http.Request) {
	m := d.srv.Metrics()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if m == nil {
		http.Error(w, "metrics disabled (start the server with a registry)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := m.Snapshot().WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleLedger streams the server's energy ledger as JSONL — the same
// wire format hivereport and the offline auditor read.
func (d *Dashboard) handleLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	lg := d.srv.Ledger()
	if lg == nil {
		http.Error(w, "ledger disabled (start the server with -ledger)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := lg.WriteJSONL(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSLO evaluates the armed SLO spec against the live registry and
// ledger. A breach is still a 200 — the report body carries the
// verdict; monitors should alert on "pass": false, not on the status
// code, so an SLO burn never looks like a dashboard outage.
func (d *Dashboard) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if d.sloSpec == nil {
		http.Error(w, "slo disabled (start the server with -slo spec.json)", http.StatusNotFound)
		return
	}
	m := d.srv.Metrics()
	if m == nil {
		http.Error(w, "slo needs metrics (start the server with a registry)", http.StatusNotFound)
		return
	}
	in := slo.Input{
		Snapshot: m.Snapshot(),
		Window:   time.Since(d.sloStart), //beelint:allow walltime live dashboard SLO windows are wall-clock by nature
	}
	if lg := d.srv.Ledger(); lg != nil {
		in.Entries = lg.Entries()
	}
	rep, err := slo.Evaluate(*d.sloSpec, in)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rep.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// validTraceID reports whether id is a 32-digit lowercase hex trace ID
// — the only form the span layer ever mints.
func validTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleTrace serves one trace's events as a Chrome trace_event JSON
// file — load it in Perfetto to see the wake-up's full edge-to-cloud
// chain (root routine span, per-attempt radio spans, server handler).
func (d *Dashboard) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if d.srv.Tracer() == nil {
		http.Error(w, "tracing disabled (start the server with a tracer)", http.StatusNotFound)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/trace/")
	if !validTraceID(id) {
		http.Error(w, "trace id must be 32 lowercase hex digits", http.StatusBadRequest)
		return
	}
	events, ok := d.srv.TraceEvents(id)
	if !ok {
		http.Error(w, "unknown trace id", http.StatusNotFound)
		return
	}
	if err := obs.WriteTraceJSON(w, events); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleSlowest lists the slowest end-to-end uploads the server has
// handled, as (latency, trace ID) exemplars linking straight into
// /api/trace/{id}. Empty until traced uploads arrive.
func (d *Dashboard) handleSlowest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ex := d.srv.SlowestUploads(16)
	if ex == nil {
		ex = []obs.ExemplarSnap{}
	}
	writeJSON(w, ex)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *Dashboard) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st := d.srv.Stats()
	writeJSON(w, map[string]any{
		"sessions":          st.Sessions,
		"reports":           st.Reports,
		"uploads":           st.Uploads,
		"burst_energy_j":    float64(st.BurstEnergy),
		"idle_energy_j":     float64(st.IdleEnergy),
		"detector_accuracy": d.srv.DetectorAccuracy(),
	})
}

func (d *Dashboard) handleHives(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, d.srv.Archive().Hives())
}

func (d *Dashboard) handleRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	hive := r.URL.Query().Get("hive")
	if hive == "" {
		http.Error(w, "missing hive parameter", http.StatusBadRequest)
		return
	}
	var kind store.Kind
	switch r.URL.Query().Get("kind") {
	case "":
		kind = 0
	case "sensor":
		kind = store.KindSensor
	case "result":
		kind = store.KindResult
	default:
		http.Error(w, "unknown kind", http.StatusBadRequest)
		return
	}
	hours := 24.0
	if hstr := r.URL.Query().Get("hours"); hstr != "" {
		h, err := strconv.ParseFloat(hstr, 64)
		if err != nil || h <= 0 {
			http.Error(w, "bad hours parameter", http.StatusBadRequest)
			return
		}
		hours = h
	}
	//beelint:allow walltime live-dashboard query window over real archive timestamps; never feeds simulated state
	now := time.Now().UTC().Add(time.Minute) // include just-written records
	from := now.Add(-time.Duration(hours * float64(time.Hour)))
	records, err := d.srv.Archive().Query(hive, from, now, kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, records)
}

var indexTemplate = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>beesim cloud service</title></head>
<body>
<h1>beesim cloud service</h1>
<p>detector accuracy: {{printf "%.1f" .Accuracy}}%</p>
<ul>
<li>sessions: {{.Stats.Sessions}}</li>
<li>reports: {{.Stats.Reports}}</li>
<li>uploads: {{.Stats.Uploads}}</li>
<li>burst energy above idle: {{printf "%.1f" .BurstJ}} J</li>
</ul>
<h2>hives</h2>
<ul>
{{range .Hives}}<li>{{.}} — latest: {{index $.Latest .}}</li>
{{else}}<li>none yet</li>
{{end}}
</ul>
{{if .Slowest}}<h2>slowest uploads</h2>
<ul>
{{range .Slowest}}<li><a href="/api/trace/{{.TraceID}}">{{.TraceID}}</a> — {{printf "%.2f" .Value}} s end-to-end</li>
{{end}}
</ul>
{{end}}<p>API: /api/stats, /api/hives, /api/records?hive=ID&amp;kind=result, /api/ledger, /api/slowest, /api/trace/{id}</p>
</body></html>
`))

func (d *Dashboard) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	st := d.srv.Stats()
	hives := d.srv.Archive().Hives()
	sort.Strings(hives)
	latest := map[string]string{}
	for _, h := range hives {
		if rec, ok := d.srv.Archive().Latest(h, store.KindResult); ok {
			verdict := "queenless"
			if rec.Fields["queen_present"] == 1 {
				verdict = "queen present"
			}
			latest[h] = fmt.Sprintf("%s at %s", verdict, rec.Time.Format(time.RFC3339))
		} else {
			latest[h] = "no verdicts yet"
		}
	}
	data := struct {
		Stats    Stats
		Accuracy float64
		BurstJ   float64
		Hives    []string
		Latest   map[string]string
		Slowest  []obs.ExemplarSnap
	}{
		Stats:    st,
		Accuracy: 100 * d.srv.DetectorAccuracy(),
		BurstJ:   float64(st.BurstEnergy),
		Hives:    hives,
		Latest:   latest,
		Slowest:  d.srv.SlowestUploads(5),
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
