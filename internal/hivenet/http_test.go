package hivenet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/store"
)

func dashboardWithTraffic(t *testing.T) (*Dashboard, *Server) {
	t.Helper()
	s := startServer(t, DefaultServerConfig())
	agent, err := Dial(s.Addr(), DefaultAgentConfig("dash-1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	return NewDashboard(s), s
}

func TestDashboardStats(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["uploads"].(float64) != 1 {
		t.Fatalf("uploads = %v", body["uploads"])
	}
	if body["burst_energy_j"].(float64) <= 0 {
		t.Fatal("no burst energy reported")
	}
}

func TestDashboardHives(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/hives", nil))
	var hives []string
	if err := json.Unmarshal(rec.Body.Bytes(), &hives); err != nil {
		t.Fatal(err)
	}
	if len(hives) != 1 || hives[0] != "dash-1" {
		t.Fatalf("hives = %v", hives)
	}
}

func TestDashboardRecords(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/api/records?hive=dash-1&kind=result", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var records []store.Record
	if err := json.Unmarshal(rec.Body.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].Fields["queen_present"] != 1 {
		t.Fatalf("verdict = %v", records[0].Fields)
	}
}

func TestDashboardRecordsValidation(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	cases := []string{
		"/api/records",                    // missing hive
		"/api/records?hive=x&kind=banana", // bad kind
		"/api/records?hive=x&hours=-1",    // bad hours
		"/api/records?hive=x&hours=zero",  // unparsable hours
	}
	for _, url := range cases {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, rec.Code)
		}
	}
}

func TestDashboardIndexHTML(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"beesim cloud service", "dash-1", "queen present"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths 404.
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rec.Code)
	}
}

func TestDashboardMethodGuards(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	for _, url := range []string{"/api/stats", "/api/hives", "/api/records?hive=x"} {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status = %d, want 405", url, rec.Code)
		}
	}
}
