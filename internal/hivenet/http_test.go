package hivenet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/slo"
	"beesim/internal/store"
)

func dashboardWithTraffic(t *testing.T) (*Dashboard, *Server) {
	t.Helper()
	s := startServer(t, DefaultServerConfig())
	agent, err := Dial(s.Addr(), DefaultAgentConfig("dash-1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	return NewDashboard(s), s
}

func TestDashboardStats(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["uploads"].(float64) != 1 {
		t.Fatalf("uploads = %v", body["uploads"])
	}
	if body["burst_energy_j"].(float64) <= 0 {
		t.Fatal("no burst energy reported")
	}
}

func TestDashboardHives(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/hives", nil))
	var hives []string
	if err := json.Unmarshal(rec.Body.Bytes(), &hives); err != nil {
		t.Fatal(err)
	}
	if len(hives) != 1 || hives[0] != "dash-1" {
		t.Fatalf("hives = %v", hives)
	}
}

func TestDashboardRecords(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/api/records?hive=dash-1&kind=result", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var records []store.Record
	if err := json.Unmarshal(rec.Body.Bytes(), &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].Fields["queen_present"] != 1 {
		t.Fatalf("verdict = %v", records[0].Fields)
	}
}

func TestDashboardRecordsValidation(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	cases := []string{
		"/api/records",                    // missing hive
		"/api/records?hive=x&kind=banana", // bad kind
		"/api/records?hive=x&hours=-1",    // bad hours
		"/api/records?hive=x&hours=zero",  // unparsable hours
	}
	for _, url := range cases {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, rec.Code)
		}
	}
}

func TestDashboardIndexHTML(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"beesim cloud service", "dash-1", "queen present"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Unknown paths 404.
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rec.Code)
	}
}

func TestDashboardMethodGuards(t *testing.T) {
	d, _ := dashboardWithTraffic(t)
	for _, url := range []string{"/api/stats", "/api/hives", "/api/records?hive=x"} {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status = %d, want 405", url, rec.Code)
		}
	}
}

func TestDashboardLedgerEndpoint(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.Ledger = ledger.New()
	s := startServer(t, cfg)
	agent, err := Dial(s.Addr(), DefaultAgentConfig("ledger-1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, at); err != nil {
		t.Fatal(err)
	}
	d := NewDashboard(s)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/ledger", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	back, err := ledger.ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries := back.Entries()
	if len(entries) != 2 {
		t.Fatalf("ledger entries = %d, want receive+execute", len(entries))
	}
	var total float64
	for _, e := range entries {
		if e.Hive != "ledger-1" || e.Device != "cloud" || e.Store != "" || !e.T.Equal(at) {
			t.Fatalf("entry = %+v", e)
		}
		total += e.Joules
	}
	if got := float64(s.Stats().BurstEnergy); total != got {
		t.Fatalf("ledger burst %v J, stats %v J", total, got)
	}

	// Without a ledger the endpoint 404s.
	d2, _ := dashboardWithTraffic(t)
	rec2 := httptest.NewRecorder()
	d2.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/ledger", nil))
	if rec2.Code != http.StatusNotFound {
		t.Fatalf("disabled ledger status = %d", rec2.Code)
	}
}

// TestDashboardSLO: /api/slo is 404 until armed, then evaluates the
// spec against the live registry (HTTP request-latency histograms
// feed a latency objective) and reports pass/fail as JSON with a 200
// either way.
func TestDashboardSLO(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.Metrics = obs.NewRegistry()
	s := startServer(t, cfg)
	d := NewDashboard(s)

	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unarmed /api/slo status = %d", rec.Code)
	}

	// Generate one instrumented request so the stats histogram has a
	// sample, then bound its p99.
	d.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	d.SetSLO(slo.Spec{
		Name: "dash",
		Objectives: []slo.Objective{
			{Name: "stats latency", Kind: slo.KindLatency,
				Metric: MetricHTTPSeconds + ".stats", Quantile: 0.99, MaxSeconds: 30},
		},
	})
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/slo status = %d: %s", rec.Code, rec.Body.String())
	}
	var rep slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Spec != "dash" || len(rep.Results) != 1 || !rep.Results[0].Pass {
		t.Fatalf("report = %+v", rep)
	}

	// A breach is still a 200: the body, not the status, is the signal.
	d.SetSLO(slo.Spec{
		Name: "tight",
		Objectives: []slo.Objective{
			{Name: "stats latency", Kind: slo.KindLatency,
				Metric: MetricHTTPSeconds + ".stats", Quantile: 0.5, MaxSeconds: 1e-12},
		},
	})
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("breached /api/slo status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("tight SLO must breach: %s", rec.Body.String())
	}
}
