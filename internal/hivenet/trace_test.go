package hivenet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"beesim/internal/faults"
	"beesim/internal/hive"
	"beesim/internal/netsim"
	"beesim/internal/obs"
)

// tracedLink builds a fault-armed uplink whose first attempts fail
// deterministically, instrumented into the given tracer and registry.
func tracedLink(t *testing.T, m *obs.Registry, tr *obs.Tracer, start time.Time, dropProb float64) *netsim.Link {
	t.Helper()
	cfg := netsim.DefaultConfig()
	cfg.Seed = 5
	link, err := netsim.NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link.Instrument(m, tr, func() time.Time { return start })
	inj, err := faults.NewInjector(faults.Plan{
		Seed: 9,
		Link: faults.LinkFaults{DropProb: dropProb},
	}, start)
	if err != nil {
		t.Fatal(err)
	}
	pol := faults.DefaultRetryPolicy()
	pol.MaxAttempts = 6
	if err := link.AttachFaults(inj, pol, m); err != nil {
		t.Fatal(err)
	}
	return link
}

// TestTracedUploadEndToEnd is the tentpole's acceptance check: one
// faulted campaign yields a single Chrome trace in which an upload's
// root span, its per-attempt radio spans and the server's handler span
// share a trace ID, and the critical-path analyzer attributes >= 95 %
// of the end-to-end latency to named segments.
func TestTracedUploadEndToEnd(t *testing.T) {
	epoch := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)
	m := obs.NewRegistry()
	tr := obs.NewTracer(epoch)

	srvCfg := DefaultServerConfig()
	srvCfg.Metrics = m
	srvCfg.Tracer = tr
	s := startServer(t, srvCfg)

	agCfg := DefaultAgentConfig("trace-1")
	agCfg.Seed = 3
	agCfg.Tracer = tr
	// Drop probability 0.5: with seed 9 some of the cycles below retry
	// at least once; we assert on the attempt histogram to be sure.
	agCfg.Uplink = tracedLink(t, m, tr, epoch, 0.5)
	agent, err := Dial(s.Addr(), agCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	var traceIDs []string
	for i := 0; i < 8; i++ {
		now := epoch.Add(time.Duration(i) * 5 * time.Minute)
		if _, err := agent.RunCycle(hive.QueenPresent, 0.6, now); err != nil {
			if err == ErrUploadDropped {
				continue // budget exhausted; still a valid traced episode
			}
			t.Fatal(err)
		}
		traceIDs = append(traceIDs, agent.LastTraceID())
	}
	if len(traceIDs) == 0 {
		t.Fatal("no upload delivered in 8 cycles")
	}
	snap := m.Snapshot()
	att, ok := snap.FindHistogram(netsim.MetricAttemptsPerUpload)
	if !ok || att.Max < 2 {
		t.Fatalf("campaign saw no retries (max attempts %v); cannot exercise attempt spans", att.Max)
	}

	// The tracer holds agent and server spans; pick a delivered upload
	// that needed retries and check the full chain shares its trace ID.
	sums := obs.AnalyzeTraces(tr.Events())
	if len(sums) == 0 {
		t.Fatal("no traces analyzed")
	}
	byID := make(map[string]obs.TraceSummary, len(sums))
	for _, s := range sums {
		byID[s.TraceID] = s
	}
	var checked, retried bool
	for _, id := range traceIDs {
		sum, ok := byID[id]
		if !ok {
			t.Fatalf("delivered upload trace %s missing from analysis", id)
		}
		if sum.RootName != "wake-up cycle" {
			t.Fatalf("trace %s root = %q, want the agent's wake-up span", id, sum.RootName)
		}
		if sum.Segment("server handle upload") == 0 {
			t.Fatalf("trace %s has no server handler span — traceparent join failed", id)
		}
		if sum.Segment("uplink transfer") == 0 {
			t.Fatalf("trace %s has no delivered transfer span", id)
		}
		if cov := sum.Coverage(); cov < 0.95 {
			t.Fatalf("trace %s attributes only %.1f%% of its latency", id, 100*cov)
		}
		checked = true
		if sum.Segment("uplink retry") > 0 && sum.Segment("uplink backoff") > 0 {
			retried = true
		}
	}
	if !checked {
		t.Fatal("no trace verified")
	}
	if !retried {
		t.Fatal("no delivered upload carried retry + backoff spans; campaign too calm")
	}

	// The written trace is one valid Chrome JSON file.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace JSON invalid")
	}

	// Exemplars in the merged registry point back at real trace IDs.
	e2e, ok := snap.FindHistogram(MetricUploadE2ESeconds)
	if !ok || len(e2e.Exemplars) == 0 {
		t.Fatal("upload e2e histogram carries no exemplars")
	}
	for _, ex := range e2e.Exemplars {
		if _, ok := byID[ex.TraceID]; !ok {
			t.Fatalf("exemplar trace %s not in the trace file", ex.TraceID)
		}
	}

	// The dashboard serves the chain: slowest panel -> trace fetch.
	d := NewDashboard(s)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slowest", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/slowest status = %d", rec.Code)
	}
	var slowest []obs.ExemplarSnap
	if err := json.Unmarshal(rec.Body.Bytes(), &slowest); err != nil {
		t.Fatal(err)
	}
	if len(slowest) == 0 {
		t.Fatal("slowest panel empty after traced uploads")
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].Value > slowest[i-1].Value {
			t.Fatal("slowest panel not sorted slowest-first")
		}
	}
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/trace/"+slowest[0].TraceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/trace/{id} status = %d: %s", rec.Code, rec.Body.String())
	}
	events, err := obs.ParseTraceJSON(rec.Body.Bytes())
	if err != nil || len(events) == 0 {
		t.Fatalf("trace endpoint body unparseable: %v", err)
	}
	for _, e := range events {
		if id, _ := e.Args[obs.ArgTraceID].(string); id != slowest[0].TraceID {
			t.Fatalf("trace endpoint leaked foreign event %v", e)
		}
	}
}

func TestTraceEndpointValidation(t *testing.T) {
	d, _ := dashboardWithTraffic(t) // untraced server
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/trace/0123456789abcdef0123456789abcdef", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("untraced server trace fetch status = %d, want 404", rec.Code)
	}

	epoch := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)
	cfg := DefaultServerConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(epoch)
	s := startServer(t, cfg)
	td := NewDashboard(s)
	for _, bad := range []string{
		"/api/trace/",
		"/api/trace/short",
		"/api/trace/0123456789ABCDEF0123456789ABCDEF", // uppercase
		"/api/trace/0123456789abcdef0123456789abcdeg", // non-hex
	} {
		rec := httptest.NewRecorder()
		td.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", bad, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	td.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/trace/0123456789abcdef0123456789abcdef", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d, want 404", rec.Code)
	}
}

// TestAPIEndpointHeaders pins the contract that every /api/* response
// carries an explicit content type and no-store caching, success and
// error paths alike.
func TestAPIEndpointHeaders(t *testing.T) {
	d, s := dashboardWithTraffic(t)
	_ = s
	cases := []struct {
		path        string
		wantType    string // "" means: don't check (error paths are text/plain)
		wantOK      bool
		contentType string
	}{
		{path: "/api/stats", wantOK: true, contentType: "application/json"},
		{path: "/api/hives", wantOK: true, contentType: "application/json"},
		{path: "/api/records?hive=dash-1", wantOK: true, contentType: "application/json"},
		{path: "/api/metrics", wantOK: false},                // metrics disabled on this server
		{path: "/api/ledger", wantOK: false},                 // ledger disabled
		{path: "/api/slo", wantOK: false},                    // slo not armed
		{path: "/api/trace/" + strings.Repeat("a", 32), wantOK: false}, // tracing disabled
		{path: "/api/slowest", wantOK: true, contentType: "application/json"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.path, nil))
		if c.wantOK && rec.Code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", c.path, rec.Code)
		}
		if !c.wantOK && rec.Code == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", c.path)
		}
		if got := rec.Header().Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", c.path, got)
		}
		if c.contentType != "" {
			if got := rec.Header().Get("Content-Type"); got != c.contentType {
				t.Errorf("%s Content-Type = %q, want %q", c.path, got, c.contentType)
			}
		}
	}
	// The ledger endpoint keeps its JSONL type when armed.
	// (Covered by TestDashboardLedgerEndpoint for the body; here only
	// the cache header matters and it is asserted above.)
}

// FuzzTraceparent fuzzes the W3C traceparent parser the server runs on
// every upload frame: parsing must never panic, and any accepted header
// must re-serialize to the exact input bytes and re-parse to the same
// identity (the round-trip contract the wire join depends on).
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-00")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7")
	f.Add(obs.NewRootSpan(42, "fuzz-hive", 7).Traceparent())
	f.Add("")
	f.Add(strings.Repeat("-", 55))
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := obs.ParseTraceparent(s)
		if err != nil {
			return
		}
		out := sc.Traceparent()
		if out != s {
			t.Fatalf("accepted %q but re-serialized to %q", s, out)
		}
		back, err := obs.ParseTraceparent(out)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", out, err)
		}
		if back != sc {
			t.Fatalf("round trip changed identity: %+v vs %+v", back, sc)
		}
	})
}
