package hivenet

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"beesim/internal/audio"
	"beesim/internal/obs"
	"beesim/internal/proto"
)

// repeatReader serves the same frame bytes n times, then EOF — a
// session carrying n identical uploads without materializing them.
type repeatReader struct {
	frame []byte
	n     int
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	k := copy(p, r.frame[r.off:])
	r.off += k
	if r.off == len(r.frame) {
		r.off = 0
		r.n--
	}
	return k, nil
}

// BenchmarkServerHandleUpload measures the server's full per-upload
// path — frame decode, admission, PCM decode, inference, accounting,
// archive append under the shed-oldest cap, result encode — by
// streaming one session of b.N identical uploads through the handler
// over an in-memory conn.
func BenchmarkServerHandleUpload(b *testing.B) {
	cfg := DefaultServerConfig()
	cfg.TrainCorpus = 12
	cfg.ClipSeconds = 0.25
	cfg.Metrics = obs.NewRegistry()
	cfg.Admission = AdmissionConfig{MaxInflightUploads: 4, MaxArchiveRecords: 64}
	s, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	hello := encodeFrame(b, proto.TypeHello,
		proto.Hello{HiveID: "bench", WakePeriodSeconds: 300, Version: 1}, nil)
	clip := make([]float64, audio.SampleRate/4)
	upload := encodeFrame(b, proto.TypeAudioUpload, proto.AudioUpload{
		HiveID: "bench", Time: time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC),
		SampleRate: audio.SampleRate, Samples: len(clip),
	}, proto.PCMEncode(clip))

	b.SetBytes(int64(len(upload)))
	b.ReportAllocs()
	b.ResetTimer()
	err = s.handle(&scriptConn{r: io.MultiReader(
		bytes.NewReader(hello), &repeatReader{frame: upload, n: b.N})})
	b.StopTimer()
	if err != nil && !errors.Is(err, io.EOF) {
		b.Fatal(err)
	}
	if got := s.Stats().Uploads; got != b.N {
		b.Fatalf("handled %d uploads, want %d", got, b.N)
	}
}
