// Package hivenet is the runnable realization of the paper's
// architecture: a cloud service and an edge agent speaking
// internal/proto over TCP.
//
// The server plays the paper's cloud role: it assigns connecting hives
// to time slots (the allocator's job in Section VI), receives sensor
// reports and audio uploads, executes the queen-detection model on
// uploads, and keeps the energy ledger of its own idle/receive/execute
// bursts using the calibrated power models. The agent plays the edge
// role: it collects a cycle's data, runs the model locally or uploads
// the audio depending on its placement, and keeps the edge ledger.
package hivenet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"beesim/internal/audio"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/power"
	"beesim/internal/proto"
	"beesim/internal/queendetect"
	"beesim/internal/store"
	"beesim/internal/units"
)

// AdmissionConfig bounds what a server accepts before it starts
// shedding load. The zero value admits everything (the pre-admission
// behavior); production fleets should set every bound so a retry storm
// degrades into typed rejections instead of unbounded queues.
type AdmissionConfig struct {
	// MaxSessions caps concurrently connected sessions. A Hello beyond
	// the cap is answered with a TypeReject (code "server_full") and the
	// connection is closed. 0 = unlimited.
	MaxSessions int
	// MaxInflightUploads caps audio uploads being handled at once
	// across all sessions. An upload beyond the budget is answered with
	// a TypeReject (code "over_capacity") and the session stays open so
	// the client can back off and retry. 0 = unlimited.
	MaxInflightUploads int
	// MaxArchiveRecords caps the archive's resident index; beyond it
	// the oldest records are shed (counted by
	// hivenet_archive_shed_total). 0 = unbounded.
	MaxArchiveRecords int
	// RetryAfter is the backoff hint carried by over-capacity rejects.
	// 0 sends no hint (clients fall back to their own retry policy).
	RetryAfter time.Duration
	// UploadStall injects a real per-upload handling delay — a stress
	// and test knob that stands in for heavier inference models so a
	// small fleet can saturate the inflight budget deterministically.
	UploadStall time.Duration
}

// ServerConfig shapes the cloud service.
type ServerConfig struct {
	// Admission bounds sessions, inflight uploads and archive growth;
	// the zero value admits everything.
	Admission AdmissionConfig
	// MaxParallel is the slot capacity (clients per time slot).
	MaxParallel int
	// Slots is the number of time slots per cycle.
	Slots int
	// TrainCorpus is the number of synthetic clips used to train the
	// server's queen-detection model at startup.
	TrainCorpus int
	// ClipSeconds is the training clip length.
	ClipSeconds float64
	// Seed drives training determinism.
	Seed uint64
	// Logf, when non-nil, receives server logs.
	Logf func(format string, args ...any)
	// ArchivePath, when non-empty, persists every report and verdict to
	// a file-backed store (the paper's "remote data storage"); empty uses
	// an in-memory archive.
	ArchivePath string
	// Metrics, when non-nil, receives the server's session/report/upload
	// counters, slot gauges and energy totals, and enables the
	// dashboard's /metrics and /api/metrics snapshot endpoints.
	Metrics *obs.Registry
	// Ledger, when non-nil, records each upload's receive+execute burst
	// as attribution-only consume entries keyed by the upload's own
	// (virtual) timestamp and hive ID, and enables the dashboard's
	// /api/ledger endpoint. The entries carry no store: the server is
	// grid-powered, so they never enter a battery conservation balance.
	Ledger *ledger.Ledger
	// Tracer, when non-nil, records a handler span per audio upload,
	// joined into the uploading agent's trace via the frame's W3C
	// traceparent, and enables the dashboard's /api/trace/{id} and
	// /api/slowest endpoints. Spans are keyed by the upload's virtual
	// timestamp, so traces from deterministic campaigns stay
	// reproducible.
	Tracer *obs.Tracer
}

// Metric names emitted by an instrumented server.
const (
	MetricSessions     = "hivenet_sessions_total"
	MetricReports      = "hivenet_reports_total"
	MetricUploads      = "hivenet_uploads_total"
	MetricSessionErrs  = "hivenet_session_errors_total"
	MetricSlotAssigns  = "hivenet_slot_assignments_total"
	MetricSlotRejects  = "hivenet_slot_rejections_total"
	MetricBurstJ       = "hivenet_burst_energy_j_total"
	MetricClientsLive  = "hivenet_clients_connected"
	MetricHTTPInFlight = "hivenet_http_in_flight"
	MetricHTTPRequests = "hivenet_http_requests_total"
	MetricHTTPSeconds  = "hivenet_http_request_seconds"
	// MetricUploadHandleSeconds distributes the server-side handling
	// burst (receive + execute) per audio upload.
	MetricUploadHandleSeconds = "hivenet_upload_handle_seconds"
	// MetricUploadE2ESeconds distributes the end-to-end upload latency
	// seen by the server: the session's last sensor-report (wake-up)
	// timestamp through handling done. Retried uploads arrive with
	// shifted timestamps, so radio attempts and backoff show up here;
	// its exemplars feed the dashboard's slowest-uploads panel.
	MetricUploadE2ESeconds = "hivenet_upload_e2e_seconds"
	// MetricAdmissionRejects counts typed admission rejections (session
	// cap and inflight-budget 429s). A reject is never counted as a
	// delivered upload.
	MetricAdmissionRejects = "hivenet_admission_rejects_total"
	// MetricArchiveShed counts archive records shed by the
	// bounded-memory ingestion cap.
	MetricArchiveShed = "hivenet_archive_shed_total"
	// MetricInflightUploads gauges uploads being handled right now.
	MetricInflightUploads = "hivenet_inflight_uploads"
	// MetricQueueDepth distributes the inflight-upload occupancy seen
	// by each arriving upload (admitted or rejected) — the server-side
	// queue-depth signal capacity planning reads.
	MetricQueueDepth = "hivenet_queue_depth"
)

// DefaultServerConfig mirrors the paper's Figure-6 setting with a small
// training corpus.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		MaxParallel: 10,
		Slots:       18,
		TrainCorpus: 60,
		ClipSeconds: 1,
		Seed:        1,
	}
}

// Server is the cloud service.
type Server struct {
	cfg      ServerConfig
	ln       net.Listener
	detector *queendetect.SVMResult
	cloud    power.Cloud
	archive  *store.Store

	mu       sync.Mutex
	nextSlot int
	slotLoad []int
	sessions int
	reports  int
	uploads  int
	rejects  int
	energy   units.Joules // receive+execute bursts above idle
	closed   bool
	wg       sync.WaitGroup
	started  time.Time

	// Admission state: lock-free so the reject fast path costs two
	// atomic ops under storm load.
	liveSessions atomic.Int64
	inflight     atomic.Int64
	shedSeen     atomic.Int64

	// Observability probes; nil-safe no-ops when cfg.Metrics is nil.
	mSessions    *obs.Counter
	mReports     *obs.Counter
	mUploads     *obs.Counter
	mSessionErrs *obs.Counter
	mSlotAssigns  *obs.Counter
	mSlotRejects  *obs.Counter
	mBurstJ       *obs.Counter
	gClients      *obs.Gauge
	hUploadHandle *obs.Histogram
	hUploadE2E    *obs.Histogram
	mAdmRejects   *obs.Counter
	mArchiveShed  *obs.Counter
	gInflight     *obs.Gauge
	hQueueDepth   *obs.Histogram
}

// NewServer trains the detection model and binds a listener on addr
// (use "127.0.0.1:0" for tests).
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.MaxParallel <= 0 || cfg.Slots <= 0 {
		return nil, errors.New("hivenet: non-positive slot shape")
	}
	if cfg.TrainCorpus < 8 {
		return nil, errors.New("hivenet: training corpus too small")
	}
	corpus, err := audio.Corpus(audio.Config{
		SampleRate: audio.SampleRate,
		Seconds:    cfg.ClipSeconds,
		Seed:       cfg.Seed,
	}, cfg.TrainCorpus)
	if err != nil {
		return nil, err
	}
	detector, err := queendetect.TrainSVM(corpus, audio.SampleRate, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("hivenet: training detector: %w", err)
	}
	archive := store.OpenMemory()
	if cfg.ArchivePath != "" {
		archive, err = store.Open(cfg.ArchivePath)
		if err != nil {
			return nil, fmt.Errorf("hivenet: opening archive: %w", err)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if cfg.ArchivePath != "" {
			if cerr := archive.Close(); cerr != nil {
				err = errors.Join(err, fmt.Errorf("hivenet: closing archive: %w", cerr))
			}
		}
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		detector: detector,
		cloud:    power.DefaultCloud(),
		archive:  archive,
		slotLoad: make([]int, cfg.Slots),
		started:  time.Now(), //beelint:allow walltime real service uptime anchor for the idle-energy stat; ledger entries use upload timestamps

		mSessions:    cfg.Metrics.Counter(MetricSessions),
		mReports:     cfg.Metrics.Counter(MetricReports),
		mUploads:     cfg.Metrics.Counter(MetricUploads),
		mSessionErrs: cfg.Metrics.Counter(MetricSessionErrs),
		mSlotAssigns: cfg.Metrics.Counter(MetricSlotAssigns),
		mSlotRejects: cfg.Metrics.Counter(MetricSlotRejects),
		mBurstJ:      cfg.Metrics.Counter(MetricBurstJ),
		gClients:     cfg.Metrics.Gauge(MetricClientsLive),

		hUploadHandle: cfg.Metrics.Histogram(MetricUploadHandleSeconds),
		hUploadE2E:    cfg.Metrics.Histogram(MetricUploadE2ESeconds),
		mAdmRejects:   cfg.Metrics.Counter(MetricAdmissionRejects),
		mArchiveShed:  cfg.Metrics.Counter(MetricArchiveShed),
		gInflight:     cfg.Metrics.Gauge(MetricInflightUploads),
		hQueueDepth:   cfg.Metrics.Histogram(MetricQueueDepth),
	}
	if cfg.Admission.MaxArchiveRecords > 0 {
		s.archive.SetCap(cfg.Admission.MaxArchiveRecords)
	}
	return s, nil
}

// Metrics returns the registry the server was configured with (nil when
// observability is disabled).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Archive exposes the server's data store for queries.
func (s *Server) Archive() *store.Store { return s.archive }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// DetectorAccuracy returns the held-out accuracy of the model the server
// serves.
func (s *Server) DetectorAccuracy() float64 { return s.detector.Metrics.Accuracy }

// Serve accepts connections until Close. It returns nil after a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.gClients.Add(1)
			defer s.gClients.Add(-1)
			if err := s.handle(conn); err != nil && err != io.EOF {
				s.mSessionErrs.Inc()
				s.logf("session error: %v", err)
			}
		}()
	}
}

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if cerr := s.archive.Close(); err == nil {
		err = cerr
	}
	return err
}

// archiveResult stores a verdict, logging rather than failing the
// session on archive errors.
func (s *Server) archiveResult(res proto.Result) {
	queen := 0.0
	if res.QueenPresent {
		queen = 1
	}
	if err := s.archive.Append(store.Record{
		Hive: res.HiveID,
		Time: res.Time,
		Kind: store.KindResult,
		Fields: map[string]float64{
			"queen_present": queen,
			"confidence":    res.Confidence,
		},
		Text: map[string]string{"computed_at": res.ComputedAt},
	}); err != nil {
		s.logf("archive: %v", err)
	}
	s.syncShed()
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Sessions int
	Reports  int
	Uploads  int
	// Rejects counts typed admission rejections (session cap and
	// inflight budget). Rejected uploads are never counted in Uploads.
	Rejects int
	// ArchiveShed counts records shed by the bounded-memory archive cap.
	ArchiveShed int
	// BurstEnergy is the above-idle receive/execute energy modeled for
	// the traffic served so far.
	BurstEnergy units.Joules
	// IdleEnergy is the modeled idle baseline since startup.
	IdleEnergy units.Joules
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	shed := s.archive.Evicted()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Sessions:    s.sessions,
		Reports:     s.reports,
		Uploads:     s.uploads,
		Rejects:     s.rejects,
		ArchiveShed: shed,
		BurstEnergy: s.energy,
		IdleEnergy:  s.cloud.IdlePower.Energy(time.Since(s.started)), //beelint:allow walltime idle baseline of the live grid-powered service; not part of any conservation balance
	}
}

// noteReject counts one typed admission rejection.
func (s *Server) noteReject() {
	s.mu.Lock()
	s.rejects++
	s.mu.Unlock()
	s.mAdmRejects.Inc()
}

// syncShed folds newly shed archive records into the shed counter.
// Called after archive appends; serialized through shedSeen so
// concurrent sessions never double-count.
func (s *Server) syncShed() {
	ev := int64(s.archive.Evicted())
	for {
		prev := s.shedSeen.Load()
		if ev <= prev {
			return
		}
		if s.shedSeen.CompareAndSwap(prev, ev) {
			s.mArchiveShed.Add(float64(ev - prev))
			return
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) error {
	defer conn.Close()

	// Session opening: hello -> welcome with a slot assignment.
	f, err := proto.Decode(conn)
	if err != nil {
		return err
	}
	var hello proto.Hello
	if err := f.Unmarshal(proto.TypeHello, &hello); err != nil {
		_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
		return err
	}
	// Session admission: a Hello beyond the cap gets a typed reject and
	// the connection closes. The reject itself is not a session error —
	// backpressure is the server working as designed — but a failed
	// reject write is.
	if maxS := s.cfg.Admission.MaxSessions; maxS > 0 {
		if s.liveSessions.Add(1) > int64(maxS) {
			s.liveSessions.Add(-1)
			s.noteReject()
			return proto.Encode(conn, proto.TypeReject, proto.RejectBody{
				Code:        proto.RejectServerFull,
				Message:     "session cap reached",
				RetryAfterS: s.cfg.Admission.RetryAfter.Seconds(),
			}, nil)
		}
		defer s.liveSessions.Add(-1)
	}
	slot, err := s.assignSlot()
	if err != nil {
		_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
		return err
	}
	s.mu.Lock()
	s.sessions++
	s.mu.Unlock()
	s.mSessions.Inc()
	if err := proto.Encode(conn, proto.TypeWelcome,
		proto.Welcome{Slot: slot, MaxParallel: s.cfg.MaxParallel}, nil); err != nil {
		return err
	}
	s.logf("hive %s joined slot %d", hello.HiveID, slot)

	// lastWake remembers the session's most recent sensor-report
	// timestamp — the wake-up instant — so an upload's end-to-end
	// latency (wake through handling, radio retries included) can be
	// measured from the shifted upload timestamp.
	var lastWake time.Time
	for {
		f, err := proto.Decode(conn)
		if err != nil {
			if err == io.EOF {
				return nil // agent dropped without bye; tolerated
			}
			return err
		}
		switch f.Type {
		case proto.TypeSensorReport:
			var r proto.SensorReport
			if err := f.Unmarshal(proto.TypeSensorReport, &r); err != nil {
				return err
			}
			if err := s.archive.Append(store.Record{
				Hive: r.HiveID,
				Time: r.Time,
				Kind: store.KindSensor,
				Fields: map[string]float64{
					"inside_temp_c":  r.InsideTempC,
					"inside_rh":      r.InsideRH,
					"outside_temp_c": r.OutsideTempC,
					"battery_soc":    r.BatterySoC,
				},
			}); err != nil {
				s.logf("archive: %v", err)
			}
			s.syncShed()
			s.mu.Lock()
			s.reports++
			s.mu.Unlock()
			s.mReports.Inc()
			lastWake = r.Time
			if err := proto.Encode(conn, proto.TypeAck, nil, nil); err != nil {
				return err
			}

		case proto.TypeAudioUpload:
			var up proto.AudioUpload
			if err := f.Unmarshal(proto.TypeAudioUpload, &up); err != nil {
				return err
			}
			admitted, err := s.admitUpload(conn)
			if err != nil {
				return err
			}
			if !admitted {
				continue // typed reject sent; the session stays open
			}
			if err := s.handleUpload(conn, f, up, lastWake); err != nil {
				return err
			}

		case proto.TypeResult:
			// An edge-computed verdict being archived.
			var res proto.Result
			if err := f.Unmarshal(proto.TypeResult, &res); err != nil {
				return err
			}
			s.archiveResult(res)
			s.mu.Lock()
			s.reports++
			s.mu.Unlock()
			s.mReports.Inc()
			if err := proto.Encode(conn, proto.TypeAck, nil, nil); err != nil {
				return err
			}

		case proto.TypeBye:
			_ = proto.Encode(conn, proto.TypeAck, nil, nil)
			return nil

		default:
			err := fmt.Errorf("hivenet: unexpected %v frame", f.Type)
			_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
			return err
		}
	}
}

// admitUpload applies the inflight-upload budget. It observes the
// occupancy every arriving upload sees (the queue-depth signal), then
// either takes a budget slot (admitted=true; the caller must release it
// through handleUpload) or writes a typed over-capacity reject
// (admitted=false). The returned error is a failed reject write — the
// only way admission itself can fail a session.
func (s *Server) admitUpload(conn net.Conn) (admitted bool, err error) {
	s.hQueueDepth.Observe(float64(s.inflight.Load()))
	if b := s.cfg.Admission.MaxInflightUploads; b > 0 && s.inflight.Add(1) > int64(b) {
		s.inflight.Add(-1)
		s.noteReject()
		return false, proto.Encode(conn, proto.TypeReject, proto.RejectBody{
			Code:        proto.RejectOverCapacity,
			Message:     "inflight upload budget exhausted",
			RetryAfterS: s.cfg.Admission.RetryAfter.Seconds(),
		}, nil)
	} else if b <= 0 {
		s.inflight.Add(1)
	}
	s.gInflight.Add(1)
	return true, nil
}

// handleUpload runs one admitted audio upload to completion: decode,
// infer, account, archive, reply. It always releases the inflight
// budget slot taken by admitUpload.
func (s *Server) handleUpload(conn net.Conn, f proto.Frame, up proto.AudioUpload, lastWake time.Time) error {
	defer func() {
		s.inflight.Add(-1)
		s.gInflight.Add(-1)
	}()
	if stall := s.cfg.Admission.UploadStall; stall > 0 {
		time.Sleep(stall) //beelint:allow walltime stress/test knob standing in for heavier inference on the live server
	}
	samples, err := proto.PCMDecode(f.Raw)
	if err != nil {
		_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
		return err
	}
	if len(samples) != up.Samples {
		err := fmt.Errorf("hivenet: declared %d samples, got %d", up.Samples, len(samples))
		_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
		return err
	}
	queen, confidence, err := s.infer(samples, up.SampleRate)
	if err != nil {
		_ = proto.Encode(conn, proto.TypeError, proto.ErrorBody{Message: err.Error()}, nil)
		return err
	}
	// Join the agent's trace: the frame's traceparent names the
	// upload span, and the handler span becomes its child. A
	// missing or malformed header degrades to an untraced
	// handling (never a session error).
	var srvSC *obs.SpanContext
	if up.Traceparent != "" {
		if pc, perr := obs.ParseTraceparent(up.Traceparent); perr == nil {
			srvSC = pc.Child("server", 0)
		}
	}
	burstD, burstJ := s.accountUpload(up.HiveID, up.Time)
	if srvSC != nil {
		s.cfg.Tracer.SpanCtx(srvSC, "server handle upload", "server",
			obs.TidServer, up.Time, burstD, map[string]any{
				"hive":   up.HiveID,
				"queen":  queen,
				"joules": float64(burstJ),
			})
	}
	s.hUploadHandle.ObserveExemplar(burstD.Seconds(), srvSC)
	if !lastWake.IsZero() && up.Time.After(lastWake) {
		s.hUploadE2E.ObserveExemplar(up.Time.Sub(lastWake).Seconds()+burstD.Seconds(), srvSC)
	} else {
		s.hUploadE2E.ObserveExemplar(burstD.Seconds(), srvSC)
	}
	s.mu.Lock()
	s.uploads++
	s.mu.Unlock()
	s.mUploads.Inc()
	res := proto.Result{
		HiveID:       up.HiveID,
		Time:         up.Time,
		QueenPresent: queen,
		Confidence:   confidence,
		ComputedAt:   "cloud",
		Traceparent:  srvSC.Traceparent(),
	}
	s.archiveResult(res)
	return proto.Encode(conn, proto.TypeResult, res, nil)
}

// assignSlot implements the paper's sequential filling policy over the
// live session set.
func (s *Server) assignSlot() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.cfg.Slots; i++ {
		idx := (s.nextSlot + i) % s.cfg.Slots
		if s.slotLoad[idx] < s.cfg.MaxParallel {
			s.slotLoad[idx]++
			s.mSlotAssigns.Inc()
			if s.slotLoad[idx] == s.cfg.MaxParallel {
				s.nextSlot = (idx + 1) % s.cfg.Slots
			} else {
				s.nextSlot = idx
			}
			return idx, nil
		}
	}
	s.mSlotRejects.Inc()
	return 0, errors.New("hivenet: server full (all slots at capacity)")
}

// infer runs the queen detector on an uploaded clip.
func (s *Server) infer(samples []float64, sampleRate int) (bool, float64, error) {
	if sampleRate <= 0 {
		return false, 0, errors.New("hivenet: bad sample rate")
	}
	queen, err := s.detector.Predict(samples, sampleRate)
	if err != nil {
		return false, 0, err
	}
	// Confidence from the decision margin through a squashing map.
	v, err := queendetect.VectorFeatures(samples, sampleRate)
	if err != nil {
		return false, 0, err
	}
	margin := s.detector.Model.Decision(s.detector.Scaler.Transform(v))
	if margin < 0 {
		margin = -margin
	}
	confidence := margin / (1 + margin)
	return queen, confidence, nil
}

// accountUpload charges the energy books for one receive+execute burst
// using the calibrated cloud model (Table II's rows), attributing the
// entries to the uploading hive at its own timestamp. It returns the
// burst's duration and above-idle energy for the handler span.
func (s *Server) accountUpload(hive string, at time.Time) (time.Duration, units.Joules) {
	recv := s.cloud.Receive()
	exec := s.cloud.ExecSVM()
	recvExtra := (recv.Power() - s.cloud.IdlePower).Energy(recv.Duration)
	execExtra := (exec.Power() - s.cloud.IdlePower).Energy(exec.Duration)
	s.mu.Lock()
	s.energy += recvExtra + execExtra
	s.mu.Unlock()
	s.mBurstJ.Add(float64(recvExtra + execExtra))
	if s.cfg.Ledger != nil {
		s.cfg.Ledger.Append(ledger.Entry{
			T: at, Hive: hive, Device: "cloud", Component: "server",
			Task: "Receive audio", Dir: ledger.Consume,
			Joules: float64(recvExtra), Seconds: recv.Duration.Seconds(),
		})
		s.cfg.Ledger.Append(ledger.Entry{
			T: at, Hive: hive, Device: "cloud", Component: "server",
			Task: exec.Name, Dir: ledger.Consume,
			Joules: float64(execExtra), Seconds: exec.Duration.Seconds(),
		})
	}
	return recv.Duration + exec.Duration, recvExtra + execExtra
}

// Ledger returns the ledger the server was configured with (nil when
// disabled).
func (s *Server) Ledger() *ledger.Ledger { return s.cfg.Ledger }

// Tracer returns the tracer the server was configured with (nil when
// tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// TraceEvents returns every recorded event tagged with the given trace
// ID, in recording order. When agents share the server's tracer (the
// in-process campaign setup) this is the full edge-to-cloud chain;
// otherwise it is the server-side slice. ok is false when tracing is
// disabled or the ID is unknown.
func (s *Server) TraceEvents(id string) ([]obs.TraceEvent, bool) {
	if s.cfg.Tracer == nil || id == "" {
		return nil, false
	}
	var out []obs.TraceEvent
	for _, e := range s.cfg.Tracer.Events() {
		if e.Args == nil {
			continue
		}
		if tid, _ := e.Args[obs.ArgTraceID].(string); tid == id {
			out = append(out, e)
		}
	}
	return out, len(out) > 0
}

// SlowestUploads returns up to n end-to-end upload-latency exemplars,
// slowest first (ties toward the smaller trace ID) — the dashboard's
// "which uploads hurt" panel. Empty when metrics or tracing are off.
func (s *Server) SlowestUploads(n int) []obs.ExemplarSnap {
	ex := s.hUploadE2E.Exemplars()
	sort.Slice(ex, func(i, j int) bool {
		if ex[i].Value != ex[j].Value {
			return ex[i].Value > ex[j].Value
		}
		return ex[i].TraceID < ex[j].TraceID
	})
	if n >= 0 && len(ex) > n {
		ex = ex[:n]
	}
	return ex
}
