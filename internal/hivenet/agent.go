package hivenet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"beesim/internal/audio"
	"beesim/internal/faults"
	"beesim/internal/hive"
	"beesim/internal/netsim"
	"beesim/internal/obs"
	"beesim/internal/power"
	"beesim/internal/proto"
	"beesim/internal/queendetect"
	"beesim/internal/routine"
	"beesim/internal/units"
)

// ErrUploadDropped reports that the modeled uplink exhausted its retry
// budget before delivering the cycle's audio upload. The session stays
// usable; the caller decides whether to retry next wake-up.
var ErrUploadDropped = errors.New("hivenet: upload dropped: uplink retry budget exhausted")

// RejectedError is the client-side face of a TypeReject frame: the
// server's admission control refused the request. For code
// "over_capacity" the session stays open and the client should back
// off and retry; for "server_full" the server closed the connection.
type RejectedError struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("hivenet: rejected (%s): %s", e.Code, e.Message)
}

// IsRejected unwraps err into a RejectedError, if it is one.
func IsRejected(err error) (*RejectedError, bool) {
	var re *RejectedError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// rejectedError converts a decoded TypeReject frame into its typed
// error.
func rejectedError(f proto.Frame) error {
	var body proto.RejectBody
	if err := f.Unmarshal(proto.TypeReject, &body); err != nil {
		return err
	}
	return &RejectedError{
		Code:       body.Code,
		Message:    body.Message,
		RetryAfter: time.Duration(body.RetryAfterS * float64(time.Second)),
	}
}

// AgentConfig shapes one edge agent.
type AgentConfig struct {
	HiveID string
	// Placement selects the scenario: EdgeOnly runs the model locally
	// and archives results; EdgeCloud uploads audio for cloud inference.
	Placement routine.Placement
	// WakePeriod is reported to the server for slot planning.
	WakePeriod time.Duration
	// ClipSeconds is the audio capture length per cycle.
	ClipSeconds float64
	// Seed drives the synthetic colony audio.
	Seed uint64
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// Tracer, when non-nil, records each cycle's edge tasks as tagged
	// spans of a per-wake-up trace whose ID is a pure hash of
	// (Seed, HiveID, wake index); the upload frames then carry the
	// trace as a W3C traceparent so the server joins its handler spans
	// into the same trace.
	Tracer *obs.Tracer
	// Uplink, when non-nil, models the radio episode of each EdgeCloud
	// upload (attempts, backoff, retry energy) in virtual time. A
	// fault-armed link can exhaust its budget, which surfaces as
	// ErrUploadDropped; a delivered episode shifts the upload's
	// timestamp by the episode's total duration so server-side
	// accounting sees the queue and retry delay.
	Uplink *netsim.Link
}

// DefaultAgentConfig returns an edge+cloud agent at the paper's cadence.
func DefaultAgentConfig(hiveID string) AgentConfig {
	return AgentConfig{
		HiveID:      hiveID,
		Placement:   routine.EdgeCloud,
		WakePeriod:  5 * time.Minute,
		ClipSeconds: 1,
		Seed:        1,
		DialTimeout: 5 * time.Second,
	}
}

// Agent is a connected smart beehive.
type Agent struct {
	cfg      AgentConfig
	conn     net.Conn
	synth    *audio.Synth
	detector *queendetect.SVMResult // only for the edge placement
	slot     int

	cycles     int
	wakes      int
	edgeEnergy units.Joules
	lastResult *proto.Result
	lastTrace  string
}

// Dial connects an agent to the cloud service and completes the session
// handshake. For the EdgeOnly placement the agent also trains its local
// model (the paper trains in the cloud and ships the model; here the
// synthetic corpus makes local training equivalent).
func Dial(addr string, cfg AgentConfig) (*Agent, error) {
	if cfg.HiveID == "" {
		return nil, errors.New("hivenet: empty hive id")
	}
	if cfg.ClipSeconds <= 0 {
		return nil, errors.New("hivenet: non-positive clip length")
	}
	synth, err := audio.NewSynth(audio.Config{
		SampleRate: audio.SampleRate,
		Seconds:    cfg.ClipSeconds,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	a := &Agent{cfg: cfg, synth: synth}

	if cfg.Placement == routine.EdgeOnly {
		corpus, err := audio.Corpus(audio.Config{
			SampleRate: audio.SampleRate,
			Seconds:    cfg.ClipSeconds,
			Seed:       cfg.Seed + 1,
		}, 60)
		if err != nil {
			return nil, err
		}
		a.detector, err = queendetect.TrainSVM(corpus, audio.SampleRate, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("hivenet: training edge model: %w", err)
		}
	}

	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	a.conn = conn
	if err := proto.Encode(conn, proto.TypeHello, proto.Hello{
		HiveID:            cfg.HiveID,
		WakePeriodSeconds: cfg.WakePeriod.Seconds(),
		Version:           1,
	}, nil); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := proto.Decode(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type == proto.TypeReject {
		err := rejectedError(f)
		conn.Close()
		return nil, err
	}
	if f.Type == proto.TypeError {
		var e proto.ErrorBody
		_ = f.Unmarshal(proto.TypeError, &e)
		conn.Close()
		return nil, fmt.Errorf("hivenet: server refused: %s", e.Message)
	}
	var welcome proto.Welcome
	if err := f.Unmarshal(proto.TypeWelcome, &welcome); err != nil {
		conn.Close()
		return nil, err
	}
	a.slot = welcome.Slot
	return a, nil
}

// Slot returns the server-assigned time slot.
func (a *Agent) Slot() int { return a.slot }

// Cycles returns the number of completed cycles.
func (a *Agent) Cycles() int { return a.cycles }

// EdgeEnergy returns the modeled edge energy spent so far (active tasks,
// per the calibrated tables; sleep is not included since wall-clock time
// in tests is compressed).
func (a *Agent) EdgeEnergy() units.Joules { return a.edgeEnergy }

// LastResult returns the most recent verdict, if any.
func (a *Agent) LastResult() (proto.Result, bool) {
	if a.lastResult == nil {
		return proto.Result{}, false
	}
	return *a.lastResult, true
}

// LastTraceID returns the trace ID of the most recent wake-up ("" when
// the agent runs untraced or has not cycled yet). Use it to fetch the
// stitched trace from the dashboard's /api/trace/{id} endpoint.
func (a *Agent) LastTraceID() string { return a.lastTrace }

// RunCycle performs one wake-up cycle against the given ground-truth
// colony state: collect (synthesize the clip and a sensor report), then
// infer locally or upload, then "shut down".
func (a *Agent) RunCycle(state hive.QueenState, activity float64, now time.Time) (proto.Result, error) {
	if a.conn == nil {
		return proto.Result{}, errors.New("hivenet: agent closed")
	}
	// Root span of this wake-up's causal trace. The index counts every
	// wake attempt (dropped uploads included) so each wake-up owns a
	// distinct trace ID; sc stays nil on untraced agents, keeping the
	// wire frames byte-identical to earlier releases (omitempty).
	var sc *obs.SpanContext
	if a.cfg.Tracer != nil || a.cfg.Uplink != nil {
		sc = obs.NewRootSpan(a.cfg.Seed, a.cfg.HiveID, uint64(a.wakes))
	}
	a.wakes++
	pi := power.DefaultPi3B()
	clip := a.synth.Clip(state, activity)
	collect := pi.WakeAndCollect()
	a.edgeEnergy += collect.Energy
	// upEnd tracks when the modeled radio episode delivered (equal to
	// now when no uplink is modeled); the root span covers through the
	// later of the edge timeline and the radio episode.
	upEnd := now
	// Edge task spans stack on a virtual timeline from now; edgeAt
	// advances as the routine progresses.
	edgeAt := now
	edgeIdx := uint64(0)
	edgeSpan := func(t power.Task) {
		if sc != nil {
			a.cfg.Tracer.SpanCtx(sc.Child("edge", edgeIdx), t.Name, "edge",
				obs.TidRoutine, edgeAt, t.Duration, map[string]any{"joules": float64(t.Energy)})
		}
		edgeAt = edgeAt.Add(t.Duration)
		edgeIdx++
	}
	edgeSpan(collect)

	// The scalar sensor report goes up in both placements.
	report := proto.SensorReport{
		HiveID:      a.cfg.HiveID,
		Time:        now,
		InsideTempC: 34.8,
		InsideRH:    0.6,
		BatterySoC:  0.8,
		Traceparent: sc.Traceparent(),
	}
	if err := proto.Encode(a.conn, proto.TypeSensorReport, report, nil); err != nil {
		return proto.Result{}, err
	}
	if err := a.expectAck(); err != nil {
		return proto.Result{}, err
	}

	var result proto.Result
	switch a.cfg.Placement {
	case routine.EdgeOnly:
		queen, err := a.detector.Predict(clip, audio.SampleRate)
		if err != nil {
			return proto.Result{}, err
		}
		infer, sendRes := pi.InferSVM(), pi.SendResults()
		a.edgeEnergy += infer.Energy + sendRes.Energy
		edgeSpan(infer)
		edgeSpan(sendRes)
		result = proto.Result{
			HiveID:       a.cfg.HiveID,
			Time:         now,
			QueenPresent: queen,
			ComputedAt:   "edge",
			Traceparent:  sc.Traceparent(),
		}
		if err := proto.Encode(a.conn, proto.TypeResult, result, nil); err != nil {
			return proto.Result{}, err
		}
		if err := a.expectAck(); err != nil {
			return proto.Result{}, err
		}

	case routine.EdgeCloud:
		sendTask := pi.SendAudio()
		a.edgeEnergy += sendTask.Energy
		edgeSpan(sendTask)
		// The upload span is the parent of the radio attempts and of
		// the server's handler span (joined via the traceparent).
		upSC := sc.Child("upload", 0)
		up := proto.AudioUpload{
			HiveID:      a.cfg.HiveID,
			Time:        now,
			SampleRate:  audio.SampleRate,
			Samples:     len(clip),
			Traceparent: upSC.Traceparent(),
		}
		if a.cfg.Uplink != nil {
			// Model the radio episode in virtual time: attempts, backoff
			// and retry energy. A delivered episode delays the upload's
			// effective timestamp by its total duration, so server-side
			// accounting (and the handler span) sees the retry latency.
			out := a.cfg.Uplink.SendSpan(now, netsim.Bytes(2*len(clip)), upSC)
			a.edgeEnergy += out.RetryEnergy
			if !out.Delivered {
				a.lastTrace = sc.TraceHex()
				return proto.Result{}, ErrUploadDropped
			}
			up.Time = now.Add(out.TotalDuration)
			upEnd = up.Time
		}
		if err := proto.Encode(a.conn, proto.TypeAudioUpload, up, proto.PCMEncode(clip)); err != nil {
			return proto.Result{}, err
		}
		f, err := proto.Decode(a.conn)
		if err != nil {
			return proto.Result{}, err
		}
		if f.Type == proto.TypeReject {
			// Typed backpressure: the session stays open; surface the
			// rejection so the caller can back off and retry.
			a.lastTrace = sc.TraceHex()
			return proto.Result{}, rejectedError(f)
		}
		if f.Type == proto.TypeError {
			var e proto.ErrorBody
			_ = f.Unmarshal(proto.TypeError, &e)
			return proto.Result{}, fmt.Errorf("hivenet: server error: %s", e.Message)
		}
		if err := f.Unmarshal(proto.TypeResult, &result); err != nil {
			return proto.Result{}, err
		}

	default:
		return proto.Result{}, fmt.Errorf("hivenet: unsupported placement %v", a.cfg.Placement)
	}

	shut := pi.Shutdown()
	a.edgeEnergy += shut.Energy
	edgeSpan(shut)
	if sc != nil && a.cfg.Tracer != nil {
		end := edgeAt
		if upEnd.After(end) {
			end = upEnd
		}
		a.cfg.Tracer.SpanCtx(sc, "wake-up cycle", "edge", obs.TidRoutine, now, end.Sub(now),
			map[string]any{"hive": a.cfg.HiveID})
	}
	a.cycles++
	a.lastResult = &result
	a.lastTrace = sc.TraceHex()
	return result, nil
}

// RunCycleRetry is the well-behaved client loop around RunCycle: on a
// typed over-capacity rejection it backs off per policy (honoring the
// server's RetryAfter hint when it is longer) and retries the cycle,
// up to the policy's attempt budget. Backoff sleeps are real time,
// scaled by sleepScale so tests and compressed-time replays can shrink
// them (1.0 = real backoff; 0 sleeps not at all). It returns the
// result, the number of attempts consumed, and the final error: nil on
// delivery, the last RejectedError when the budget is exhausted, or
// any non-reject error immediately.
func (a *Agent) RunCycleRetry(state hive.QueenState, activity float64, now time.Time,
	policy faults.RetryPolicy, sleepScale float64) (proto.Result, int, error) {
	if err := policy.Validate(); err != nil {
		return proto.Result{}, 0, err
	}
	for attempt := 1; ; attempt++ {
		res, err := a.RunCycle(state, activity, now)
		if err == nil {
			return res, attempt, nil
		}
		rej, ok := IsRejected(err)
		if !ok || rej.Code != proto.RejectOverCapacity || attempt >= policy.MaxAttempts {
			return proto.Result{}, attempt, err
		}
		delay := policy.Backoff(attempt, 0.5)
		if rej.RetryAfter > delay {
			delay = rej.RetryAfter
		}
		if sleepScale > 0 && delay > 0 {
			time.Sleep(time.Duration(float64(delay) * sleepScale)) //beelint:allow walltime real client backoff against a live server
		}
	}
}

func (a *Agent) expectAck() error {
	f, err := proto.Decode(a.conn)
	if err != nil {
		return err
	}
	if f.Type == proto.TypeError {
		var e proto.ErrorBody
		_ = f.Unmarshal(proto.TypeError, &e)
		return fmt.Errorf("hivenet: server error: %s", e.Message)
	}
	if f.Type != proto.TypeAck {
		return fmt.Errorf("hivenet: expected ack, got %v", f.Type)
	}
	return nil
}

// Close says goodbye and releases the connection.
func (a *Agent) Close() error {
	if a.conn == nil {
		return nil
	}
	_ = proto.Encode(a.conn, proto.TypeBye, nil, nil)
	// Best effort: wait for the ack, then close either way.
	_ = a.conn.SetReadDeadline(time.Now().Add(time.Second)) //beelint:allow walltime read deadline on a real TCP socket
	_, _ = proto.Decode(a.conn)
	err := a.conn.Close()
	a.conn = nil
	return err
}
