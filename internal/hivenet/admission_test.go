// Admission-control integration tests: a live server with a tight
// inflight budget must answer overload with typed reject frames, keep
// its books honest (a reject is never a delivered upload), surface the
// breach on /api/slo, and still deliver for a client that retries.
//
//beelint:allow walltime these tests coordinate real concurrent sessions against a live server
package hivenet

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"beesim/internal/audio"
	"beesim/internal/faults"
	"beesim/internal/hive"
	"beesim/internal/obs"
	"beesim/internal/proto"
	"beesim/internal/slo"
)

// admissionServerConfig is a small observed server with a one-upload
// inflight budget and a handling stall long enough to overlap a
// second upload deterministically.
func admissionServerConfig(stall time.Duration) ServerConfig {
	cfg := DefaultServerConfig()
	cfg.TrainCorpus = 12
	cfg.ClipSeconds = 0.25
	cfg.Metrics = obs.NewRegistry()
	cfg.Admission = AdmissionConfig{
		MaxInflightUploads: 1,
		UploadStall:        stall,
		RetryAfter:         10 * time.Millisecond,
	}
	return cfg
}

// rawSession opens a bare protocol session (hello/welcome) on a test
// server, bypassing the Agent so frames can be interleaved precisely.
func rawSession(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := proto.Encode(conn, proto.TypeHello,
		proto.Hello{HiveID: "raw", WakePeriodSeconds: 300, Version: 1}, nil); err != nil {
		t.Fatal(err)
	}
	f, err := proto.Decode(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeWelcome {
		t.Fatalf("hello answered with %v", f.Type)
	}
	return conn
}

// sendUpload writes one well-formed audio upload frame.
func sendUpload(t *testing.T, conn net.Conn, at time.Time) {
	t.Helper()
	n := audio.SampleRate / 4
	pcm := proto.PCMEncode(make([]float64, n))
	if err := proto.Encode(conn, proto.TypeAudioUpload, proto.AudioUpload{
		HiveID:     "raw",
		Time:       at,
		SampleRate: audio.SampleRate,
		Samples:    n,
	}, pcm); err != nil {
		t.Fatal(err)
	}
}

// waitInflight polls the inflight gauge until it reaches want.
func waitInflight(t *testing.T, s *Server, want float64) {
	t.Helper()
	g := s.Metrics().Gauge(MetricInflightUploads)
	deadline := time.Now().Add(10 * time.Second)
	for g.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %v, want %v", g.Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitIdle polls until the inflight gauge drains to zero. The budget
// slot is released just after the Result frame is written, so a client
// that has read its Result must still wait a beat before the slot is
// provably free.
func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	g := s.Metrics().Gauge(MetricInflightUploads)
	deadline := time.Now().Add(10 * time.Second)
	for g.Value() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %v, want 0", g.Value())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAdmissionRejectOnWire(t *testing.T) {
	s := startServer(t, admissionServerConfig(500*time.Millisecond))
	at := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)

	// Session 1 occupies the single budget slot (its reply arrives only
	// after the stall); session 2's upload must get a typed reject.
	c1 := rawSession(t, s.Addr())
	c2 := rawSession(t, s.Addr())
	sendUpload(t, c1, at)
	waitInflight(t, s, 1)
	sendUpload(t, c2, at)

	f, err := proto.Decode(c2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeReject {
		t.Fatalf("overload answered with %v, want reject", f.Type)
	}
	var rej proto.RejectBody
	if err := f.Unmarshal(proto.TypeReject, &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Code != proto.RejectOverCapacity {
		t.Fatalf("reject code %q", rej.Code)
	}
	if rej.RetryAfterS <= 0 {
		t.Fatal("reject carries no retry-after hint")
	}

	// The session survives the reject: the same connection can still
	// deliver once the slot frees up.
	f, err = proto.Decode(c1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeResult {
		t.Fatalf("admitted upload answered with %v", f.Type)
	}
	waitIdle(t, s)
	sendUpload(t, c2, at.Add(time.Second))
	f, err = proto.Decode(c2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TypeResult {
		t.Fatalf("post-reject upload answered with %v", f.Type)
	}

	// Books: exactly 1 reject, exactly 2 delivered uploads; the reject
	// was never counted as an upload.
	st := s.Stats()
	if st.Rejects != 1 || st.Uploads != 2 {
		t.Fatalf("stats rejects=%d uploads=%d, want 1 and 2", st.Rejects, st.Uploads)
	}
	snap := s.Metrics().Snapshot()
	if c, _ := snap.FindCounter(MetricAdmissionRejects); c != 1 {
		t.Fatalf("%s = %v, want 1", MetricAdmissionRejects, c)
	}
	if c, _ := snap.FindCounter(MetricUploads); c != 2 {
		t.Fatalf("%s = %v, want 2", MetricUploads, c)
	}
	if h, ok := snap.FindHistogram(MetricQueueDepth); !ok || h.Count != 3 {
		t.Fatalf("queue-depth histogram count = %v, want one observation per arriving upload", h.Count)
	}
}

func TestAdmissionBreachOnSLOEndpoint(t *testing.T) {
	s := startServer(t, admissionServerConfig(500*time.Millisecond))
	at := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)

	c1 := rawSession(t, s.Addr())
	c2 := rawSession(t, s.Addr())
	sendUpload(t, c1, at)
	waitInflight(t, s, 1)
	sendUpload(t, c2, at)
	if f, err := proto.Decode(c2); err != nil || f.Type != proto.TypeReject {
		t.Fatalf("expected reject, got %v (%v)", f.Type, err)
	}
	if f, err := proto.Decode(c1); err != nil || f.Type != proto.TypeResult {
		t.Fatalf("expected result, got %v (%v)", f.Type, err)
	}

	// One delivered, one rejected: an objective allowing at most 1%
	// rejects per delivered upload is in breach, and /api/slo says so.
	spec, err := slo.ParseSpec([]byte(`{
	  "name": "admission", "objectives": [
	    {"name": "admission headroom", "kind": "availability",
	     "total_metric": "hivenet_uploads_total",
	     "bad_metric": "hivenet_admission_rejects_total",
	     "min_ratio": 0.99}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDashboard(s)
	d.SetSLO(spec)
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/slo = %d: %s", rec.Code, rec.Body.String())
	}
	var rep slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("SLO passed despite a reject storm: %s", rec.Body.String())
	}
}

func TestRetryingClientEventuallyDelivers(t *testing.T) {
	s := startServer(t, admissionServerConfig(800*time.Millisecond))
	at := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)

	// A raw session parks an upload in the single budget slot...
	c1 := rawSession(t, s.Addr())
	sendUpload(t, c1, at)
	waitInflight(t, s, 1)

	// ...so a real agent's first attempt is rejected; its RetryPolicy
	// must carry it to delivery once the slot frees.
	cfg := DefaultAgentConfig("retrier")
	cfg.ClipSeconds = 0.25
	cfg.Seed = 9
	agent, err := Dial(s.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	policy := faults.RetryPolicy{
		MaxAttempts:    10,
		Base:           150 * time.Millisecond,
		Max:            time.Second,
		Multiplier:     2,
		JitterFrac:     0,
		AttemptTimeout: 100 * time.Millisecond,
	}
	res, attempts, err := agent.RunCycleRetry(hive.QueenPresent, 0.7, at, policy, 1)
	if err != nil {
		t.Fatalf("retrying client never delivered after %d attempts: %v", attempts, err)
	}
	if attempts < 2 {
		t.Fatalf("delivered in %d attempt(s); the budget hold never bit", attempts)
	}
	if res.ComputedAt != "cloud" {
		t.Fatalf("result computed at %q", res.ComputedAt)
	}
	if _, err := proto.Decode(c1); err != nil {
		t.Fatal(err)
	}

	// Regression: the delivered count excludes every reject.
	st := s.Stats()
	if st.Uploads != 2 {
		t.Fatalf("uploads = %d, want 2 (parked + retried)", st.Uploads)
	}
	if st.Rejects == 0 {
		t.Fatal("no rejects recorded despite the forced overlap")
	}
	if got := int(s.Metrics().Counter(MetricUploads).Value()); got != st.Uploads {
		t.Fatalf("uploads counter %d != stats %d", got, st.Uploads)
	}
}

func TestSessionCapRefusesHello(t *testing.T) {
	cfg := admissionServerConfig(0)
	cfg.Admission.MaxSessions = 1
	s := startServer(t, cfg)

	first := rawSession(t, s.Addr())
	defer first.Close()

	cfgA := DefaultAgentConfig("late")
	cfgA.ClipSeconds = 0.25
	_, err := Dial(s.Addr(), cfgA)
	if err == nil {
		t.Fatal("second session admitted past the cap")
	}
	rej, ok := IsRejected(err)
	if !ok {
		t.Fatalf("want RejectedError, got %v", err)
	}
	if rej.Code != proto.RejectServerFull {
		t.Fatalf("reject code %q", rej.Code)
	}
	if s.Stats().Rejects != 1 {
		t.Fatalf("rejects = %d", s.Stats().Rejects)
	}
}

func TestArchiveCapBoundsServerMemory(t *testing.T) {
	cfg := admissionServerConfig(0)
	cfg.Admission.MaxArchiveRecords = 4
	s := startServer(t, cfg)
	at := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)

	conn := rawSession(t, s.Addr())
	for i := 0; i < 6; i++ {
		sendUpload(t, conn, at.Add(time.Duration(i)*time.Minute))
		if f, err := proto.Decode(conn); err != nil || f.Type != proto.TypeResult {
			t.Fatalf("upload %d answered with %v (%v)", i, f.Type, err)
		}
	}
	if got := s.Archive().Len(); got > 4 {
		t.Fatalf("archive holds %d records past cap 4", got)
	}
	st := s.Stats()
	if st.ArchiveShed != 2 {
		t.Fatalf("shed %d records, want 2 (6 verdicts - cap 4)", st.ArchiveShed)
	}
	snap := s.Metrics().Snapshot()
	if c, _ := snap.FindCounter(MetricArchiveShed); int(c) != st.ArchiveShed {
		t.Fatalf("%s = %v, stats say %d", MetricArchiveShed, c, st.ArchiveShed)
	}
}
