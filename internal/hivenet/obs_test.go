package hivenet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/obs"
)

func metricsDashboard(t *testing.T) (*Dashboard, *Server, *obs.Registry) {
	t.Helper()
	cfg := DefaultServerConfig()
	cfg.Metrics = obs.NewRegistry()
	s := startServer(t, cfg)
	agent, err := Dial(s.Addr(), DefaultAgentConfig("obs-1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	return NewDashboard(s), s, cfg.Metrics
}

func TestServerSessionMetrics(t *testing.T) {
	_, _, m := metricsDashboard(t)
	if got := m.Counter(MetricUploads).Value(); got != 1 {
		t.Fatalf("uploads counter = %v, want 1", got)
	}
	if got := m.Counter(MetricReports).Value(); got != 1 {
		t.Fatalf("reports counter = %v, want 1 (the sensor report)", got)
	}
	if got := m.Counter(MetricSessions).Value(); got != 1 {
		t.Fatalf("sessions counter = %v, want 1", got)
	}
	if got := m.Counter(MetricSlotAssigns).Value(); got != 1 {
		t.Fatalf("slot assignments = %v, want 1", got)
	}
	if got := m.Counter(MetricBurstJ).Value(); got <= 0 {
		t.Fatalf("burst energy counter = %v, want > 0", got)
	}
	if got := m.Gauge(MetricClientsLive).Value(); got != 1 {
		t.Fatalf("connected-clients gauge = %v, want 1 while the agent is up", got)
	}
}

func TestMetricsEndpoints(t *testing.T) {
	d, _, _ := metricsDashboard(t)

	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/api/metrics is not valid JSON: %v", err)
	}
	found := map[string]float64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found[MetricUploads] != 1 {
		t.Fatalf("JSON snapshot uploads = %v (counters: %v)", found[MetricUploads], found)
	}
	// The request that served the snapshot is itself instrumented.
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		MetricHTTPRequests + ".metrics",
		MetricHTTPSeconds + ".metrics",
		MetricHTTPInFlight,
		MetricUploads,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics text missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointsDisabled(t *testing.T) {
	s := startServer(t, DefaultServerConfig()) // no registry
	d := NewDashboard(s)
	for _, path := range []string{"/metrics", "/api/metrics"} {
		rec := httptest.NewRecorder()
		d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s status = %d without a registry, want 404", path, rec.Code)
		}
	}
}

func TestMetricsSnapshotConcurrencySafe(t *testing.T) {
	// Regression test for the snapshot endpoint under concurrent load:
	// scrapers hitting /metrics and /api/metrics while live sessions and
	// other handlers mutate the registry. Run with -race this proves the
	// whole pipe (atomic instruments -> snapshot -> export) is safe.
	d, s, m := metricsDashboard(t)

	var wg sync.WaitGroup
	paths := []string{"/metrics", "/api/metrics", "/api/stats", "/api/hives", "/"}
	for i := 0; i < 4; i++ {
		for _, p := range paths {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for j := 0; j < 25; j++ {
					rec := httptest.NewRecorder()
					d.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
					if rec.Code != http.StatusOK {
						t.Errorf("%s status = %d", path, rec.Code)
						return
					}
				}
			}(p)
		}
	}
	// Live protocol traffic mutating the same registry concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		agent, err := Dial(s.Addr(), DefaultAgentConfig("obs-2"))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer agent.Close()
		for j := 0; j < 5; j++ {
			if _, err := agent.RunCycle(hive.QueenPresent, 0.6, time.Now().UTC()); err != nil {
				t.Errorf("cycle: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// After the storm: in-flight back to zero, request counters account
	// for every scrape.
	if got := m.Gauge(MetricHTTPInFlight).Value(); got != 0 {
		t.Fatalf("in-flight gauge = %v after all requests returned", got)
	}
	var scrapes float64
	for _, name := range []string{"index", "stats", "hives", "metrics"} {
		scrapes += m.Counter(MetricHTTPRequests + "." + name).Value()
	}
	if scrapes < float64(4*len(paths)*25) {
		t.Fatalf("request counters total %v, want >= %d", scrapes, 4*len(paths)*25)
	}
	if got := m.Counter(MetricUploads).Value(); got != 6 {
		t.Fatalf("uploads = %v after concurrent cycles, want 6", got)
	}
}
