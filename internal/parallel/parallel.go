// Package parallel is the simulator's single sanctioned concurrency
// entry point: a deterministic fork/join layer that fans independent
// tasks — sweep points, optimizer candidates, STFT frame chunks,
// deployment replicas — across a bounded worker pool while keeping
// every observable output byte-identical to a serial run.
//
// The determinism contract has three legs:
//
//  1. Results are merged in index order. Map returns out[i] = fn(i)
//     regardless of which worker computed it or when it finished, so
//     callers can commit side effects (metrics, trace spans, ledger
//     entries) in a serial pass over the ordered results.
//  2. Tasks never share a random stream. A caller that needs
//     randomness derives one stream per task via rng.Stream, keyed by
//     a stable task identity (a client count, a replica index), never
//     by scheduling order.
//  3. The worker count only changes wall-clock time. Workers <= 1 runs
//     the tasks serially on the calling goroutine — the exact legacy
//     path, no goroutines spawned — and any larger count must produce
//     the same bytes, a property the determinism test suites assert
//     for every wired hot path.
//
// beelint's gostmt analyzer enforces the "single sanctioned entry
// point" part: go statements outside this package (and the real-I/O
// server code) are findings, and calling into this package from inside
// a DES event handler is a finding too — the event calendar is
// single-threaded by design, so fan-out must happen outside the
// simulated event loop.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"beesim/internal/obs"
)

// MetricWorkers is the gauge instrumented callers set to the resolved
// worker count of their latest fan-out, so a metrics snapshot records
// how a run was executed alongside what it computed.
const MetricWorkers = "parallel_workers"

// defaultWorkers holds the process-wide default worker count; zero
// means "use runtime.NumCPU()".
var defaultWorkers atomic.Int64

// Default returns the process-wide default worker count: the last
// value passed to SetDefault, or runtime.NumCPU when unset.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// SetDefault overrides the process-wide default worker count — the
// CLIs' -workers flag lands here. n <= 0 restores the NumCPU default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve normalizes a requested worker count: n > 0 is used as-is,
// anything else falls back to Default. Config structs use zero for
// "default", so Resolve is the one place that rule is written down.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// Record sets the worker-count gauge on m. Nil-safe like every obs
// instrument: a nil registry ignores the write.
func Record(m *obs.Registry, workers int) {
	m.Gauge(MetricWorkers).Set(float64(workers))
}

// taskPanic carries a panic value out of a worker goroutine so the
// fork/join boundary can re-raise it on the calling goroutine.
type taskPanic struct {
	index int
	value any
}

// Map evaluates fn(0), ..., fn(n-1) and returns the results in index
// order. The worker count is normalized via Resolve and capped at n;
// a resolved count of 1 (or n <= 1) runs everything serially on the
// calling goroutine without spawning a single goroutine.
//
// fn must be safe to call concurrently with itself and must not depend
// on evaluation order; under those conditions the returned slice is
// identical for every worker count.
//
// Error semantics are deterministic: the serial path stops at the
// first failing index; the parallel path evaluates every task and
// returns the error of the lowest failing index — the same error the
// serial path would have surfaced. On error the results are discarded
// (nil slice). A panicking task is re-raised on the calling goroutine,
// again picking the lowest panicking index.
func Map[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	out := make([]R, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	errs := make([]error, n)
	panics := make([]*taskPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(i, fn, out, errs, panics)
			}
		}()
	}
	wg.Wait()

	for i := range panics {
		if panics[i] != nil {
			panic(fmt.Sprintf("parallel: task %d panicked: %v", i, panics[i].value))
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runTask evaluates one task, catching a panic so the pool can finish
// joining and re-raise it deterministically.
func runTask[R any](i int, fn func(int) (R, error), out []R, errs []error, panics []*taskPanic) {
	defer func() {
		if p := recover(); p != nil {
			panics[i] = &taskPanic{index: i, value: p}
		}
	}()
	out[i], errs[i] = fn(i)
}

// MapChunks partitions [0, n) into at most `workers` contiguous,
// near-equal chunks and evaluates fn(lo, hi) for each, fanning the
// chunks across the pool. It is the shape DSP inner loops want: one
// scratch buffer per chunk, disjoint output ranges per chunk.
//
// Chunk boundaries depend on the worker count, so — unlike Map's index
// argument — they must never feed a computation: fn must compute each
// element of [lo, hi) exactly as a serial loop over [0, n) would
// (pure per-element work writing disjoint output). Every current
// caller satisfies this because per-frame scratch state is fully
// overwritten before use.
func MapChunks(workers, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return mapChunksSerial(n, fn)
	}
	chunk := (n + w - 1) / w
	chunks := (n + chunk - 1) / chunk
	_, err := Map(w, chunks, func(c int) (struct{}, error) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return struct{}{}, fn(lo, hi)
	})
	return err
}

// mapChunksSerial is the workers<=1 path of MapChunks: one chunk, the
// calling goroutine, no pool.
func mapChunksSerial(n int, fn func(lo, hi int) error) error {
	return fn(0, n)
}
