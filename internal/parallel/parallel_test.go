package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"beesim/internal/obs"
	"beesim/internal/rng"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(8, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	got, err = Map(8, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || !reflect.DeepEqual(got, []int{42}) {
		t.Fatalf("n=1: got %v, %v", got, err)
	}
}

// TestMapSerialSpawnsNoGoroutines pins the workers=1 contract: the
// tasks run on the calling goroutine.
func TestMapSerialSpawnsNoGoroutines(t *testing.T) {
	var calls int // mutated without synchronization: the race detector
	// would flag this if workers=1 ever fanned out.
	_, err := Map(1, 50, func(i int) (int, error) {
		calls++
		return calls, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 50 {
		t.Fatalf("calls = %d, want 50", calls)
	}
}

// TestMapLowestIndexError: the parallel path must surface the error a
// serial run would have stopped at, whatever the scheduling.
func TestMapLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(workers, 64, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if got != nil {
			t.Fatalf("workers=%d: results survived an error", workers)
		}
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

// TestMapDeterministicWithPerTaskStreams is the core invariant end to
// end: per-task rng streams + index-ordered merge give byte-identical
// results for every worker count.
func TestMapDeterministicWithPerTaskStreams(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(workers, 200, func(i int) (float64, error) {
			r := rng.Stream(7, uint64(i))
			return r.Gaussian(10, 2) + r.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

func TestMapPanicRepanicsLowestIndex(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("workers=%d: no panic surfaced", workers)
				}
				if s := fmt.Sprint(p); !strings.Contains(s, "task 5 panicked") {
					t.Fatalf("workers=%d: panic = %q, want task 5", workers, s)
				}
			}()
			_, _ = Map(workers, 32, func(i int) (int, error) {
				if i >= 5 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return i, nil
			})
		}()
	}
}

func TestMapChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		n := 103
		hits := make([]atomic.Int64, n)
		err := MapChunks(workers, n, func(lo, hi int) error {
			if lo < 0 || hi > n || lo >= hi {
				return fmt.Errorf("bad chunk [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestMapChunksError(t *testing.T) {
	err := MapChunks(4, 100, func(lo, hi int) error {
		if lo > 0 {
			return fmt.Errorf("chunk at %d", lo)
		}
		return nil
	})
	if err == nil {
		t.Fatal("chunk error swallowed")
	}
}

func TestResolveAndDefault(t *testing.T) {
	defer SetDefault(0)
	if Resolve(5) != 5 {
		t.Fatal("explicit count not honored")
	}
	SetDefault(3)
	if Default() != 3 || Resolve(0) != 3 || Resolve(-1) != 3 {
		t.Fatalf("default override not applied: Default=%d", Default())
	}
	SetDefault(0)
	if Default() < 1 {
		t.Fatalf("NumCPU default = %d", Default())
	}
}

func TestRecordWorkersGauge(t *testing.T) {
	Record(nil, 8) // nil-safe no-op
	m := obs.NewRegistry()
	Record(m, 8)
	if got := m.Gauge(MetricWorkers).Value(); got != 8 {
		t.Fatalf("gauge = %v, want 8", got)
	}
}
