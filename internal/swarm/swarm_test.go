package swarm

import (
	"testing"
	"time"

	"beesim/internal/audio"
	"beesim/internal/hive"
	"beesim/internal/ledger"
)

func clips(t *testing.T, state hive.QueenState, n int, seed uint64) [][]float64 {
	t.Helper()
	s, err := audio.NewSynth(audio.Config{
		SampleRate: audio.SampleRate, Seconds: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Clip(state, 0.6)
	}
	return out
}

func TestPipingScoreValidation(t *testing.T) {
	if _, err := PipingScore([]float64{0.1}, audio.SampleRate); err == nil {
		t.Error("short clip accepted")
	}
	long := make([]float64, 4096)
	if _, err := PipingScore(long, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := PipingScore(long, 700); err == nil {
		t.Error("sample rate below the piping band accepted")
	}
}

func TestPipingScoreSeparatesStates(t *testing.T) {
	piping := clips(t, hive.QueenPiping, 5, 1)
	plain := clips(t, hive.QueenPresent, 5, 2)
	var pipingMean, plainMean float64
	for i := 0; i < 5; i++ {
		sp, err := PipingScore(piping[i], audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := PipingScore(plain[i], audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		pipingMean += sp
		plainMean += pl
	}
	pipingMean /= 5
	plainMean /= 5
	if pipingMean <= plainMean {
		t.Fatalf("piping score %v not above plain %v", pipingMean, plainMean)
	}
	if pipingMean < 0 || pipingMean > 1 || plainMean < 0 || plainMean > 1 {
		t.Fatalf("scores out of [0,1]: %v, %v", pipingMean, plainMean)
	}
}

func TestNewPredictorValidation(t *testing.T) {
	bad := DefaultPredictor()
	bad.HalfLife = 0
	if _, err := NewPredictor(bad); err == nil {
		t.Error("zero half life accepted")
	}
	bad = DefaultPredictor()
	bad.AlarmThreshold = 1.5
	if _, err := NewPredictor(bad); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestPredictorRisesWithPiping(t *testing.T) {
	p, err := NewPredictor(DefaultPredictor())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2023, 5, 1, 8, 0, 0, 0, time.UTC)
	// A quiet week keeps risk low.
	for i := 0; i < 20; i++ {
		p.Observe(Observation{Time: t0.Add(time.Duration(i) * time.Hour), Piping: 0.05, Activity: 0.7})
	}
	if p.Alarm() {
		t.Fatalf("alarm on a quiet colony (risk %v)", p.Risk())
	}
	quiet := p.Risk()
	// Then sustained piping with depressed activity.
	for i := 20; i < 40; i++ {
		p.Observe(Observation{Time: t0.Add(time.Duration(i) * time.Hour), Piping: 0.8, Activity: 0.2})
	}
	if p.Risk() <= quiet {
		t.Fatal("risk did not rise under piping evidence")
	}
	if !p.Alarm() {
		t.Fatalf("no alarm after sustained piping (risk %v)", p.Risk())
	}
}

func TestPredictorDecays(t *testing.T) {
	p, err := NewPredictor(DefaultPredictor())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2023, 5, 1, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		p.Observe(Observation{Time: t0.Add(time.Duration(i) * time.Hour), Piping: 0.8, Activity: 0.2})
	}
	peak := p.Risk()
	// A quiet week decays the risk well below the alarm threshold.
	for i := 0; i < 14; i++ {
		p.Observe(Observation{
			Time: t0.Add(30*time.Hour + time.Duration(i)*12*time.Hour), Piping: 0.02, Activity: 0.8})
	}
	if p.Risk() >= peak/2 {
		t.Fatalf("risk %v did not decay from %v", p.Risk(), peak)
	}
}

func TestPredictorRiskBounded(t *testing.T) {
	p, err := NewPredictor(DefaultPredictor())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		r := p.Observe(Observation{Time: t0.Add(time.Duration(i) * time.Minute), Piping: 1, Activity: 0})
		if r < 0 || r > 1 {
			t.Fatalf("risk %v escaped [0,1]", r)
		}
	}
}

func TestEndToEndPipingPipeline(t *testing.T) {
	// Full loop: synthesized piping audio -> score -> predictor alarm.
	p, err := NewPredictor(DefaultPredictor())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2023, 5, 1, 8, 0, 0, 0, time.UTC)
	for i, clip := range clips(t, hive.QueenPiping, 8, 9) {
		score, err := PipingScore(clip, audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		p.Observe(Observation{Time: t0.Add(time.Duration(i) * time.Hour), Piping: score, Activity: 0.3})
	}
	if p.Risk() < 0.2 {
		t.Fatalf("risk after 8 piping clips = %v, want clearly elevated", p.Risk())
	}
}

func TestPredictorLedgerAttributesObservations(t *testing.T) {
	p, err := NewPredictor(DefaultPredictor())
	if err != nil {
		t.Fatal(err)
	}
	lg := ledger.New()
	p.AttachLedger(lg, "lyon-2", 54.8)
	at := time.Date(2023, 4, 10, 6, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		p.Observe(Observation{Time: at.Add(time.Duration(i) * time.Hour), Piping: 0.2, Activity: 0.5})
	}
	entries := lg.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Hive != "lyon-2" || e.Task != "swarm prediction" ||
			e.Joules != 54.8 || e.Store != "" {
			t.Fatalf("entry %d = %+v", i, e)
		}
		if e.T != at.Add(time.Duration(i)*time.Hour) {
			t.Fatalf("entry %d at %v, keyed to wall clock?", i, e.T)
		}
	}
}
