// Package swarm implements the catalog's swarm-prediction service: a
// queen preparing to swarm "pipes" — pulsed ~400 Hz tones over the
// colony hum — days before the event, and the paper lists swarm
// prediction among the tasks its Raspberry Pi can run.
//
// The detector is classical signal processing over the same STFT front
// end as queen detection: the piping band's energy fraction and its
// temporal pulsing give a per-clip piping score; a Predictor integrates
// scores and colony activity across cycles into a swarm-risk estimate
// with an alarm threshold.
package swarm

import (
	"errors"
	"math"
	"time"

	"beesim/internal/dsp"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/parallel"
)

// Piping parameters: queen toots center near 400 Hz.
const (
	bandLowHz  = 330.0
	bandHighHz = 480.0
)

// PipingScore measures how strongly a clip exhibits queen piping: the
// product of the piping band's mean energy fraction and its pulsing
// (coefficient of variation across frames), squashed into [0, 1].
func PipingScore(clip []float64, sampleRate int) (float64, error) {
	if sampleRate <= 0 {
		return 0, errors.New("swarm: non-positive sample rate")
	}
	if float64(sampleRate)/2 <= bandHighHz {
		return 0, errors.New("swarm: sample rate too low for the piping band")
	}
	cfg := dsp.PaperSTFT()
	if len(clip) < cfg.FFTSize {
		return 0, errors.New("swarm: clip shorter than one analysis window")
	}
	// The band reduction below reads whole frames, so ask the shared
	// plan for the frame-major power layout: one contiguous row per
	// frame instead of a column-strided walk over the bin-major matrix.
	plan, err := dsp.PlanFor(cfg, 0, 0)
	if err != nil {
		return 0, err
	}
	spec, err := plan.PowerFrames(clip)
	if err != nil {
		return 0, err
	}
	bins := spec.Cols
	loBin := int(bandLowHz * float64(cfg.FFTSize) / float64(sampleRate))
	hiBin := int(bandHighHz * float64(cfg.FFTSize) / float64(sampleRate))
	if hiBin >= bins {
		hiBin = bins - 1
	}
	if loBin >= hiBin {
		return 0, errors.New("swarm: sample rate too low for the piping band")
	}

	// Per-frame band fraction.
	fracs := make([]float64, spec.Rows)
	for f := 0; f < spec.Rows; f++ {
		row := spec.Data[f*bins : (f+1)*bins]
		var band, total float64
		for b := 1; b < bins; b++ {
			v := row[b]
			total += v
			if b >= loBin && b <= hiBin {
				band += v
			}
		}
		if total > 0 {
			fracs[f] = band / total
		}
	}
	var mean float64
	for _, v := range fracs {
		mean += v
	}
	mean /= float64(len(fracs))
	var variance float64
	for _, v := range fracs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(fracs))
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}

	// The hive hum keeps a small, steady band fraction; piping raises the
	// fraction and pulses it. Scale to a [0,1] score.
	raw := mean * (0.5 + cv)
	score := raw / (raw + 0.05)
	return score, nil
}

// ScoreClips computes the piping score of every clip, fanning the
// per-clip analyses across workers (0 = process default, 1 = serial).
// Scores come back in clip order and are byte-identical for every
// worker count — PipingScore is pure.
func ScoreClips(clips [][]float64, sampleRate, workers int) ([]float64, error) {
	return parallel.Map(workers, len(clips), func(i int) (float64, error) {
		return PipingScore(clips[i], sampleRate)
	})
}

// Observation is one cycle's inputs to the predictor.
type Observation struct {
	Time time.Time
	// Piping is the clip's PipingScore.
	Piping float64
	// Activity is the colony's entrance activity in [0, 1]; pre-swarm
	// colonies often show depressed foraging despite good weather.
	Activity float64
}

// PredictorConfig tunes the risk integrator.
type PredictorConfig struct {
	// HalfLife controls the exponential decay of accumulated evidence.
	HalfLife time.Duration
	// PipingWeight and ActivityWeight scale the evidence terms.
	PipingWeight   float64
	ActivityWeight float64
	// AlarmThreshold is the risk level that raises the swarm alarm.
	AlarmThreshold float64
}

// DefaultPredictor integrates over roughly two days of cycles.
func DefaultPredictor() PredictorConfig {
	return PredictorConfig{
		HalfLife:       36 * time.Hour,
		PipingWeight:   1.0,
		ActivityWeight: 0.3,
		AlarmThreshold: 0.5,
	}
}

// Predictor accumulates observations into a swarm-risk score.
type Predictor struct {
	cfg  PredictorConfig
	risk float64
	last time.Time
	seen bool

	// Observability probes; all nil-safe no-ops until Instrument.
	mObs    *obs.Counter
	mAlarms *obs.Counter
	gRisk   *obs.Gauge
	hPiping *obs.Histogram

	// Energy-ledger probe; nil-safe no-op until AttachLedger.
	lg     *ledger.Ledger
	lgHive string
	lgObsJ float64
}

// Metric names emitted by an instrumented predictor.
const (
	MetricObservations = "swarm_observations_total"
	MetricAlarms       = "swarm_alarms_total"
	MetricRisk         = "swarm_risk"
	MetricPipingScore  = "swarm_piping_score"
)

// Instrument attaches metrics probes: observation and alarm-transition
// counters, the live risk gauge, and a piping-score histogram.
func (p *Predictor) Instrument(m *obs.Registry) {
	p.mObs = m.Counter(MetricObservations)
	p.mAlarms = m.Counter(MetricAlarms)
	p.gRisk = m.Gauge(MetricRisk)
	p.hPiping = m.Histogram(MetricPipingScore)
}

// AttachLedger wires the energy ledger: each Observe appends the
// swarm-prediction service's per-observation edge energy (joulesPerObs,
// from the service catalog's edge cost) as an attribution-only consume
// entry at the observation's own time. The entries carry no store —
// the inference energy is already inside the routine's task envelope;
// this overlay only attributes it to the service.
func (p *Predictor) AttachLedger(lg *ledger.Ledger, hive string, joulesPerObs float64) {
	p.lg = lg
	p.lgHive = hive
	p.lgObsJ = joulesPerObs
}

// NewPredictor creates a predictor.
func NewPredictor(cfg PredictorConfig) (*Predictor, error) {
	if cfg.HalfLife <= 0 {
		return nil, errors.New("swarm: non-positive half life")
	}
	if cfg.AlarmThreshold <= 0 || cfg.AlarmThreshold >= 1 {
		return nil, errors.New("swarm: alarm threshold out of (0,1)")
	}
	return &Predictor{cfg: cfg}, nil
}

// Observe folds one cycle in and returns the updated risk.
func (p *Predictor) Observe(ob Observation) float64 {
	wasAlarm := p.Alarm()
	if p.seen {
		if dt := ob.Time.Sub(p.last); dt > 0 {
			decay := math.Exp(-math.Ln2 * dt.Hours() / p.cfg.HalfLife.Hours())
			p.risk *= decay
		}
	}
	p.last = ob.Time
	p.seen = true

	evidence := p.cfg.PipingWeight * ob.Piping
	// Depressed daytime activity adds weak evidence.
	if ob.Activity < 0.4 {
		evidence += p.cfg.ActivityWeight * (0.4 - ob.Activity)
	}
	// Evidence moves risk toward 1 proportionally to its strength.
	gain := clamp(evidence*0.25, 0, 0.6)
	p.risk += (1 - p.risk) * gain

	p.mObs.Inc()
	p.hPiping.Observe(ob.Piping)
	p.gRisk.Set(p.risk)
	if !wasAlarm && p.Alarm() {
		p.mAlarms.Inc()
	}
	if p.lg != nil && p.lgObsJ > 0 {
		p.lg.Append(ledger.Entry{
			T: ob.Time, Hive: p.lgHive, Device: "edge", Component: "pi3b",
			Task: "swarm prediction", Dir: ledger.Consume, Joules: p.lgObsJ,
		})
	}
	return p.risk
}

// Risk returns the current swarm-risk estimate in [0, 1].
func (p *Predictor) Risk() float64 { return p.risk }

// Alarm reports whether the risk exceeds the configured threshold.
func (p *Predictor) Alarm() bool { return p.risk >= p.cfg.AlarmThreshold }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
