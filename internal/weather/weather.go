// Package weather generates the synthetic meteorological traces that
// drive beesim's deployment simulation: outside temperature, relative
// humidity and cloud cover for the paper's two apiary sites.
//
// The paper overlays "the meteorological data" on the energy traces of
// Figure 2 and collects weather "at regular intervals" to complete the
// dataset. No archive of the real campaign exists, so we synthesize
// weather with the standard structure of mid-latitude data: a seasonal
// mean, a diurnal harmonic lagging solar noon, and mean-reverting
// (Ornstein-Uhlenbeck) noise for the irregular component. Cloud cover is
// an OU process squashed into [0,1], which yields realistic multi-hour
// overcast and clear spells.
package weather

import (
	"math"
	"time"

	"beesim/internal/rng"
	"beesim/internal/solar"
	"beesim/internal/units"
)

// Sample is the weather at one instant.
type Sample struct {
	Time        time.Time
	Temperature units.Celsius
	Humidity    units.RelativeHumidity
	CloudCover  float64 // fraction of sky covered, [0,1]
	Irradiance  units.WattsPerSquareMeter
}

// Config shapes a generator.
type Config struct {
	Location solar.Location
	// AnnualMean is the yearly mean temperature (°C); Paris ~ 12.
	AnnualMean float64
	// SeasonalAmplitude is the summer-winter half-swing (°C); Paris ~ 8.
	SeasonalAmplitude float64
	// DiurnalAmplitude is the day-night half-swing (°C).
	DiurnalAmplitude float64
	// TempNoiseSigma is the stationary stddev of the OU temperature noise.
	TempNoiseSigma float64
	// CloudMean biases cloudiness (0 clear .. 1 overcast).
	CloudMean float64
	// Seed fixes the stochastic component.
	Seed uint64
}

// DefaultConfig returns a mid-latitude France parameterization for the
// given site.
func DefaultConfig(loc solar.Location) Config {
	return Config{
		Location:          loc,
		AnnualMean:        12.5,
		SeasonalAmplitude: 8,
		DiurnalAmplitude:  5,
		TempNoiseSigma:    1.5,
		CloudMean:         0.45,
		Seed:              1,
	}
}

// Generator produces a weather trace when stepped forward in time.
// Generators are stateful (the OU noise) and must be stepped with
// non-decreasing timestamps.
type Generator struct {
	cfg       Config
	r         *rng.Source
	last      time.Time
	started   bool
	tempNoise float64
	cloudRaw  float64 // unsquashed OU state for cloud cover
}

// NewGenerator creates a generator for the configuration.
func NewGenerator(cfg Config) *Generator {
	return &Generator{
		cfg:      cfg,
		r:        rng.New(cfg.Seed),
		cloudRaw: logit(clamp(cfg.CloudMean, 0.02, 0.98)),
	}
}

// At returns the weather at time t, advancing the generator's stochastic
// state by the elapsed interval. Calling At with t before the previous
// call's time reuses the current noise state without advancing it.
func (g *Generator) At(t time.Time) Sample {
	if g.started {
		if dt := t.Sub(g.last); dt > 0 {
			g.advance(dt)
			g.last = t
		}
	} else {
		// Burn in the OU processes so the first sample is stationary.
		for i := 0; i < 48; i++ {
			g.advance(30 * time.Minute)
		}
		g.last = t
		g.started = true
	}

	temp := g.deterministicTemp(t) + g.tempNoise
	cloud := sigmoid(g.cloudRaw)
	irr := solar.Irradiance(g.cfg.Location, t, cloud)
	return Sample{
		Time:        t,
		Temperature: units.Celsius(temp),
		Humidity:    humidityFor(temp, cloud),
		CloudCover:  cloud,
		Irradiance:  irr,
	}
}

// deterministicTemp is the seasonal + diurnal harmonic component.
func (g *Generator) deterministicTemp(t time.Time) float64 {
	ut := t.UTC()
	doy := float64(ut.YearDay())
	// Coldest around mid-January (doy ~15), warmest mid-July.
	seasonal := -g.cfg.SeasonalAmplitude * math.Cos(2*math.Pi*(doy-15)/365.25)
	hour := float64(ut.Hour()) + float64(ut.Minute())/60 + g.cfg.Location.TZOffsetH
	// Warmest ~15:00 local, coldest ~03:00.
	diurnal := g.cfg.DiurnalAmplitude * math.Cos(2*math.Pi*(hour-15)/24)
	return g.cfg.AnnualMean + seasonal + diurnal
}

// advance steps the OU noise processes by dt using exact discretization:
// x' = x*exp(-dt/tau) + sigma*sqrt(1-exp(-2dt/tau))*N(0,1).
func (g *Generator) advance(dt time.Duration) {
	step := func(x *float64, tau time.Duration, sigma float64) {
		a := math.Exp(-dt.Seconds() / tau.Seconds())
		*x = *x*a + sigma*math.Sqrt(1-a*a)*g.r.Norm()
	}
	step(&g.tempNoise, 12*time.Hour, g.cfg.TempNoiseSigma)

	// Cloud: OU around the logit of the configured mean.
	mu := logit(clamp(g.cfg.CloudMean, 0.02, 0.98))
	dev := g.cloudRaw - mu
	step(&dev, 6*time.Hour, 1.2)
	g.cloudRaw = mu + dev
}

// humidityFor couples RH to temperature and cloudiness: cooler and
// cloudier air sits closer to saturation.
func humidityFor(tempC, cloud float64) units.RelativeHumidity {
	base := 0.85 - 0.012*(tempC-10) + 0.12*(cloud-0.5)
	return units.RelativeHumidity(base).Clamp()
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
