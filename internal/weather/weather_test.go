package weather

import (
	"math"
	"testing"
	"time"

	"beesim/internal/solar"
)

var start = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func trace(t *testing.T, cfg Config, days int, step time.Duration) []Sample {
	t.Helper()
	g := NewGenerator(cfg)
	var out []Sample
	for tt := start; tt.Before(start.Add(time.Duration(days) * 24 * time.Hour)); tt = tt.Add(step) {
		out = append(out, g.At(tt))
	}
	return out
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(solar.Cachan)
	a := trace(t, cfg, 2, time.Hour)
	b := trace(t, cfg, 2, time.Hour)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between equal-seed runs", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	cfg1 := DefaultConfig(solar.Cachan)
	cfg2 := cfg1
	cfg2.Seed = 99
	a := trace(t, cfg1, 1, time.Hour)
	b := trace(t, cfg2, 1, time.Hour)
	same := 0
	for i := range a {
		if a[i].Temperature == b[i].Temperature {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical temperature traces")
	}
}

func TestPlausibleSpringRange(t *testing.T) {
	for _, s := range trace(t, DefaultConfig(solar.Cachan), 7, 30*time.Minute) {
		if s.Temperature < -10 || s.Temperature > 35 {
			t.Fatalf("spring temperature %v out of plausible range at %v",
				s.Temperature, s.Time)
		}
		if s.Humidity < 0 || s.Humidity > 1 {
			t.Fatalf("humidity %v out of [0,1]", s.Humidity)
		}
		if s.CloudCover < 0 || s.CloudCover > 1 {
			t.Fatalf("cloud cover %v out of [0,1]", s.CloudCover)
		}
		if s.Irradiance < 0 {
			t.Fatalf("negative irradiance %v", s.Irradiance)
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	// Average 15:00 local temperature must exceed average 03:00 local.
	samples := trace(t, DefaultConfig(solar.Cachan), 10, time.Hour)
	var warm, cold []float64
	for _, s := range samples {
		localHour := (s.Time.UTC().Hour() + 2) % 24
		switch localHour {
		case 15:
			warm = append(warm, float64(s.Temperature))
		case 3:
			cold = append(cold, float64(s.Temperature))
		}
	}
	if len(warm) == 0 || len(cold) == 0 {
		t.Fatal("missing hourly samples")
	}
	if mean(warm) <= mean(cold) {
		t.Fatalf("afternoon mean %.2f not above night mean %.2f", mean(warm), mean(cold))
	}
}

func TestSeasonalCycle(t *testing.T) {
	cfg := DefaultConfig(solar.Cachan)
	g := NewGenerator(cfg)
	julyNoon := g.At(time.Date(2023, 7, 15, 13, 0, 0, 0, time.UTC))
	g2 := NewGenerator(cfg)
	janNoon := g2.At(time.Date(2023, 1, 15, 13, 0, 0, 0, time.UTC))
	if julyNoon.Temperature <= janNoon.Temperature {
		t.Fatalf("July noon %v not warmer than January noon %v",
			julyNoon.Temperature, janNoon.Temperature)
	}
}

func TestNightIrradianceZero(t *testing.T) {
	g := NewGenerator(DefaultConfig(solar.Cachan))
	s := g.At(time.Date(2023, 4, 10, 23, 30, 0, 0, time.UTC))
	if s.Irradiance != 0 {
		t.Fatalf("night irradiance = %v, want 0", s.Irradiance)
	}
}

func TestHumidityAntiCorrelatesWithTemperature(t *testing.T) {
	samples := trace(t, DefaultConfig(solar.Cachan), 7, time.Hour)
	var sumT, sumH float64
	for _, s := range samples {
		sumT += float64(s.Temperature)
		sumH += float64(s.Humidity)
	}
	mT, mH := sumT/float64(len(samples)), sumH/float64(len(samples))
	var cov float64
	for _, s := range samples {
		cov += (float64(s.Temperature) - mT) * (float64(s.Humidity) - mH)
	}
	if cov >= 0 {
		t.Fatalf("temperature-humidity covariance = %v, want negative", cov)
	}
}

func TestCloudCoverPersists(t *testing.T) {
	// OU clouds must have positive lag-1 autocorrelation at 30 min.
	samples := trace(t, DefaultConfig(solar.Cachan), 7, 30*time.Minute)
	var xs []float64
	for _, s := range samples {
		xs = append(xs, s.CloudCover)
	}
	m := mean(xs)
	var num, den float64
	for i := 1; i < len(xs); i++ {
		num += (xs[i] - m) * (xs[i-1] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		t.Fatal("cloud cover is constant")
	}
	if ac := num / den; ac < 0.5 {
		t.Fatalf("cloud lag-1 autocorrelation = %v, want >= 0.5", ac)
	}
}

func TestBackwardTimeDoesNotAdvanceState(t *testing.T) {
	g := NewGenerator(DefaultConfig(solar.Cachan))
	s1 := g.At(start.Add(6 * time.Hour))
	s2 := g.At(start) // earlier: state must not advance
	if math.Abs(float64(s1.Temperature-s2.Temperature)) > 20 {
		t.Fatal("implausible jump on backward query")
	}
	s3 := g.At(start.Add(6 * time.Hour))
	if s3.Temperature != s1.Temperature {
		t.Fatalf("re-query at same time changed: %v vs %v", s3.Temperature, s1.Temperature)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
