// Package units provides the physical quantities used throughout beesim:
// energy, power, charge, voltage and irradiance, together with the
// arithmetic that connects them to time.
//
// All quantities are float64 wrappers. They exist to make signatures
// self-describing (a function returning Joules cannot be confused with one
// returning Watts) and to centralize formatting. Arithmetic between
// different quantities goes through explicit conversion methods so that
// dimensional errors are visible at the call site.
package units

import (
	"fmt"
	"math"
	"time"
)

// Joules is an amount of energy.
type Joules float64

// Watts is an instantaneous power.
type Watts float64

// WattHours is an amount of energy in watt-hours (used for battery sizing).
type WattHours float64

// Volts is an electric potential.
type Volts float64

// Amperes is an electric current.
type Amperes float64

// AmpereHours is an amount of electric charge (battery capacity rating).
type AmpereHours float64

// WattsPerSquareMeter is an irradiance (solar flux density).
type WattsPerSquareMeter float64

// Celsius is a temperature.
type Celsius float64

// RelativeHumidity is a relative humidity fraction in [0, 1].
type RelativeHumidity float64

// Energy returns the energy delivered by power p over duration d.
func (p Watts) Energy(d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// Duration returns how long power p must be sustained to spend energy e.
// It returns 0 for non-positive power.
func (e Joules) Duration(p Watts) time.Duration {
	if p <= 0 {
		return 0
	}
	return time.Duration(float64(e) / float64(p) * float64(time.Second))
}

// Power returns the average power that spends energy e over duration d.
// It returns 0 for non-positive durations.
func (e Joules) Power(d time.Duration) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(e) / d.Seconds())
}

// WattHours converts the energy to watt-hours.
func (e Joules) WattHours() WattHours { return WattHours(float64(e) / 3600) }

// Joules converts the energy to joules.
func (w WattHours) Joules() Joules { return Joules(float64(w) * 3600) }

// Power returns the electrical power at voltage v carrying current i.
func Power(v Volts, i Amperes) Watts { return Watts(float64(v) * float64(i)) }

// Energy returns the energy stored by charge q at voltage v.
func (q AmpereHours) Energy(v Volts) WattHours {
	return WattHours(float64(q) * float64(v))
}

// String formats the energy with an adaptive unit (J, kJ, MJ).
func (e Joules) String() string {
	a := math.Abs(float64(e))
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.2f MJ", float64(e)/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.2f kJ", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.1f J", float64(e))
	}
}

// String formats the power with an adaptive unit (mW, W, kW).
func (p Watts) String() string {
	a := math.Abs(float64(p))
	switch {
	case a >= 1e3:
		return fmt.Sprintf("%.2f kW", float64(p)/1e3)
	case a < 1 && a > 0:
		return fmt.Sprintf("%.0f mW", float64(p)*1e3)
	default:
		return fmt.Sprintf("%.2f W", float64(p))
	}
}

// String formats the energy in watt-hours.
func (w WattHours) String() string { return fmt.Sprintf("%.2f Wh", float64(w)) }

// String formats the temperature.
func (c Celsius) String() string { return fmt.Sprintf("%.1f °C", float64(c)) }

// String formats the humidity as a percentage.
func (h RelativeHumidity) String() string { return fmt.Sprintf("%.0f %%", float64(h)*100) }

// Clamp limits the humidity to the physical range [0, 1].
func (h RelativeHumidity) Clamp() RelativeHumidity {
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}
