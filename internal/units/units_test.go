package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPowerEnergyRoundTrip(t *testing.T) {
	p := Watts(2.14)
	d := 89 * time.Second
	e := p.Energy(d)
	if !almostEq(float64(e), 190.46, 0.01) {
		t.Fatalf("energy = %v, want ~190.46 J", float64(e))
	}
	back := e.Power(d)
	if !almostEq(float64(back), float64(p), 1e-9) {
		t.Fatalf("round trip power = %v, want %v", back, p)
	}
}

func TestJoulesDuration(t *testing.T) {
	e := Joules(190.1)
	p := Watts(2.14)
	d := e.Duration(p)
	if !almostEq(d.Seconds(), 88.83, 0.01) {
		t.Fatalf("duration = %v, want ~88.83 s", d.Seconds())
	}
}

func TestDurationZeroPower(t *testing.T) {
	if d := Joules(100).Duration(0); d != 0 {
		t.Fatalf("duration at zero power = %v, want 0", d)
	}
	if d := Joules(100).Duration(-5); d != 0 {
		t.Fatalf("duration at negative power = %v, want 0", d)
	}
}

func TestPowerZeroDuration(t *testing.T) {
	if p := Joules(100).Power(0); p != 0 {
		t.Fatalf("power over zero duration = %v, want 0", p)
	}
}

func TestWattHoursConversion(t *testing.T) {
	e := Joules(3600)
	if wh := e.WattHours(); !almostEq(float64(wh), 1, 1e-12) {
		t.Fatalf("3600 J = %v Wh, want 1", wh)
	}
	if j := WattHours(2).Joules(); !almostEq(float64(j), 7200, 1e-9) {
		t.Fatalf("2 Wh = %v J, want 7200", j)
	}
}

func TestElectricalPower(t *testing.T) {
	p := Power(Volts(5), Amperes(0.43))
	if !almostEq(float64(p), 2.15, 1e-9) {
		t.Fatalf("5 V * 0.43 A = %v, want 2.15 W", p)
	}
}

func TestBatteryEnergy(t *testing.T) {
	// 20 000 mAh power bank at 3.7 V nominal cell voltage.
	wh := AmpereHours(20).Energy(Volts(3.7))
	if !almostEq(float64(wh), 74, 1e-9) {
		t.Fatalf("20 Ah at 3.7 V = %v, want 74 Wh", wh)
	}
}

func TestHumidityClamp(t *testing.T) {
	cases := []struct{ in, want RelativeHumidity }{
		{-0.5, 0}, {0, 0}, {0.42, 0.42}, {1, 1}, {1.7, 1},
	}
	for _, c := range cases {
		if got := c.in.Clamp(); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Joules(190.1).String(), "190.1 J"},
		{Joules(13744.3).String(), "13.74 kJ"},
		{Joules(2.5e6).String(), "2.50 MJ"},
		{Watts(0.62).String(), "620 mW"},
		{Watts(2.14).String(), "2.14 W"},
		{Watts(4400).String(), "4.40 kW"},
		{WattHours(74).String(), "74.00 Wh"},
		{Celsius(35.1).String(), "35.1 °C"},
		{RelativeHumidity(0.55).String(), "55 %"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestPropertyEnergyAdditive(t *testing.T) {
	// Energy over a split interval equals the sum of the parts.
	f := func(pw uint16, d1, d2 uint32) bool {
		p := Watts(float64(pw) / 100)
		a := time.Duration(d1) * time.Millisecond
		b := time.Duration(d2) * time.Millisecond
		whole := p.Energy(a + b)
		split := p.Energy(a) + p.Energy(b)
		return almostEq(float64(whole), float64(split), 1e-6*math.Max(1, float64(whole)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPowerEnergyInverse(t *testing.T) {
	f := func(pw uint16, ds uint16) bool {
		if ds == 0 {
			return true
		}
		p := Watts(float64(pw)/50 + 0.01)
		d := time.Duration(ds) * time.Second
		return almostEq(float64(p.Energy(d).Power(d)), float64(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
