// Package surrogate implements the paper's remaining future-work item:
// "investigate the use of machine learning and deep learning models to
// improve the simulation model".
//
// A Surrogate is a ridge-regression model over polynomial features of
// the orchestration inputs (fleet size, slot capacity, loss switches)
// that predicts the simulator's per-client energy. Once fitted on a few
// hundred simulated points, it answers placement queries orders of
// magnitude faster than running the allocator — useful inside an
// optimizer or on the hive itself, where the controller has a tiny
// compute budget. The package reports its own goodness of fit so callers
// can decide when to fall back to the exact simulator.
package surrogate

import (
	"errors"
	"fmt"
	"math"

	"beesim/internal/core"
	"beesim/internal/rng"
	"beesim/internal/units"
)

// Sample is one simulator evaluation.
type Sample struct {
	Clients     int
	MaxParallel int
	LossA       bool
	LossB       bool
	// PerClient is the simulator's edge+cloud per-client energy.
	PerClient units.Joules
}

// featurize maps inputs to a physics-informed regression basis: the
// simulator's per-client cost is exactly linear in servers/n (idle
// amortization) and used-slots/n (burst energy), with loss interactions
// scaling those same terms — so the surrogate learns the coefficients
// instead of the structure.
func featurize(svc core.Service, clients, maxParallel int, lossA, lossB bool) []float64 {
	n := float64(clients)
	c := float64(maxParallel)
	a, b := 0.0, 0.0
	if lossA {
		a = 1
	}
	if lossB {
		b = 1
	}
	spec := core.DefaultServer(maxParallel)
	l := core.PaperLosses(lossA, lossB, false)
	slots, err := spec.SlotsPerCycle(svc, l)
	if err != nil || slots < 1 {
		slots = 1
	}
	capacity := float64(slots * maxParallel)
	servers := math.Ceil(n / capacity)
	usedSlots := math.Ceil(n / c)
	return []float64{
		1,
		servers / n,   // idle amortization
		usedSlots / n, // per-slot burst amortization
		1 / n,
		a,
		b,
		a * usedSlots / n,     // saturation penalty on busy slots
		a * servers / n,       // saturation penalty on the idle share
		b * usedSlots / n,     // transfer penalty per slot
		b * usedSlots * c / n, // transfer penalty scaling with occupancy
	}
}

// Config shapes dataset generation and fitting.
type Config struct {
	Service core.Service
	// ClientRange and CapacityChoices define the sampled input space.
	ClientsFrom, ClientsTo int
	CapacityChoices        []int
	// Samples is the number of simulator evaluations to fit on.
	Samples int
	// Ridge is the L2 regularization strength.
	Ridge float64
	// Seed drives the sampling.
	Seed uint64
}

// DefaultConfig samples the Figure 6-9 input space.
func DefaultConfig(svc core.Service) Config {
	return Config{
		Service:         svc,
		ClientsFrom:     10,
		ClientsTo:       2000,
		CapacityChoices: []int{10, 15, 20, 26, 35, 50},
		Samples:         400,
		Ridge:           1e-6,
		Seed:            1,
	}
}

// Surrogate is a fitted predictor.
type Surrogate struct {
	weights []float64
	// TrainRMSE and TrainR2 describe the fit on the training set.
	TrainRMSE float64
	TrainR2   float64
	svc       core.Service
}

// Fit samples the simulator and fits the ridge regression.
func Fit(cfg Config) (*Surrogate, error) {
	if cfg.Samples < 20 {
		return nil, errors.New("surrogate: need at least 20 samples")
	}
	if cfg.ClientsFrom <= 0 || cfg.ClientsTo < cfg.ClientsFrom {
		return nil, fmt.Errorf("surrogate: bad client range [%d,%d]", cfg.ClientsFrom, cfg.ClientsTo)
	}
	if len(cfg.CapacityChoices) == 0 {
		return nil, errors.New("surrogate: no capacity choices")
	}
	r := rng.New(cfg.Seed)
	samples := make([]Sample, 0, cfg.Samples)
	for len(samples) < cfg.Samples {
		s := Sample{
			Clients:     cfg.ClientsFrom + r.Intn(cfg.ClientsTo-cfg.ClientsFrom+1),
			MaxParallel: cfg.CapacityChoices[r.Intn(len(cfg.CapacityChoices))],
			LossA:       r.Float64() < 0.5,
			LossB:       r.Float64() < 0.5,
		}
		cost, err := simulate(cfg.Service, s)
		if err != nil {
			continue // infeasible corner (e.g. loss B slot > period); skip
		}
		s.PerClient = cost
		samples = append(samples, s)
	}
	return FitSamples(cfg.Service, samples, cfg.Ridge)
}

// FitSamples fits the surrogate on caller-provided simulator samples.
func FitSamples(svc core.Service, samples []Sample, ridge float64) (*Surrogate, error) {
	if len(samples) < 20 {
		return nil, errors.New("surrogate: need at least 20 samples")
	}
	if ridge < 0 {
		return nil, errors.New("surrogate: negative ridge")
	}
	dim := len(featurize(svc, 1, 1, false, false))
	// Normal equations: (X^T X + ridge I) w = X^T y.
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim+1)
	}
	for _, s := range samples {
		f := featurize(svc, s.Clients, s.MaxParallel, s.LossA, s.LossB)
		y := float64(s.PerClient)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += f[i] * f[j]
			}
			xtx[i][dim] += f[i] * y
		}
	}
	for i := 0; i < dim; i++ {
		xtx[i][i] += ridge
	}
	w, err := solve(xtx)
	if err != nil {
		return nil, err
	}
	sur := &Surrogate{weights: w, svc: svc}

	// Training diagnostics.
	var sse, sst, mean float64
	for _, s := range samples {
		mean += float64(s.PerClient)
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		pred := sur.predictRaw(s.Clients, s.MaxParallel, s.LossA, s.LossB)
		d := pred - float64(s.PerClient)
		sse += d * d
		dm := float64(s.PerClient) - mean
		sst += dm * dm
	}
	sur.TrainRMSE = math.Sqrt(sse / float64(len(samples)))
	if sst > 0 {
		sur.TrainR2 = 1 - sse/sst
	} else {
		sur.TrainR2 = 1
	}
	return sur, nil
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented dim x (dim+1) system.
func solve(m [][]float64) ([]float64, error) {
	dim := len(m)
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			return nil, errors.New("surrogate: singular normal equations")
		}
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k <= dim; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	w := make([]float64, dim)
	for i := 0; i < dim; i++ {
		w[i] = m[i][dim] / m[i][i]
	}
	return w, nil
}

func (s *Surrogate) predictRaw(clients, maxParallel int, lossA, lossB bool) float64 {
	f := featurize(s.svc, clients, maxParallel, lossA, lossB)
	var sum float64
	for i, w := range s.weights {
		sum += w * f[i]
	}
	return sum
}

// Predict estimates the edge+cloud per-client energy for the inputs.
func (s *Surrogate) Predict(clients, maxParallel int, lossA, lossB bool) (units.Joules, error) {
	if clients <= 0 || maxParallel <= 0 {
		return 0, errors.New("surrogate: non-positive inputs")
	}
	return units.Joules(s.predictRaw(clients, maxParallel, lossA, lossB)), nil
}

// RecommendFast answers the placement question with the surrogate: it
// compares the (constant) edge-only per-client cost against the
// predicted edge+cloud cost.
func (s *Surrogate) RecommendFast(clients, maxParallel int, lossA, lossB bool) (edgeCloudWins bool, err error) {
	pred, err := s.Predict(clients, maxParallel, lossA, lossB)
	if err != nil {
		return false, err
	}
	return pred < s.svc.EdgeOnlyCycle, nil
}

// Evaluate measures the surrogate against fresh simulator queries.
type Evaluation struct {
	RMSE float64
	// MaxAbsErr is the largest absolute error seen.
	MaxAbsErr float64
	// DecisionAccuracy is the fraction of placement decisions the
	// surrogate gets right versus the exact simulator.
	DecisionAccuracy float64
	Queries          int
}

// Evaluate runs n random held-out queries.
func (s *Surrogate) Evaluate(cfg Config, n int, seed uint64) (Evaluation, error) {
	if n <= 0 {
		return Evaluation{}, errors.New("surrogate: non-positive query count")
	}
	r := rng.New(seed)
	var sse, maxErr float64
	agree, total := 0, 0
	for total < n {
		sample := Sample{
			Clients:     cfg.ClientsFrom + r.Intn(cfg.ClientsTo-cfg.ClientsFrom+1),
			MaxParallel: cfg.CapacityChoices[r.Intn(len(cfg.CapacityChoices))],
			LossA:       r.Float64() < 0.5,
			LossB:       r.Float64() < 0.5,
		}
		truth, err := simulate(cfg.Service, sample)
		if err != nil {
			continue
		}
		pred, err := s.Predict(sample.Clients, sample.MaxParallel, sample.LossA, sample.LossB)
		if err != nil {
			return Evaluation{}, err
		}
		d := float64(pred - truth)
		sse += d * d
		if a := math.Abs(d); a > maxErr {
			maxErr = a
		}
		if (truth < cfg.Service.EdgeOnlyCycle) == (pred < cfg.Service.EdgeOnlyCycle) {
			agree++
		}
		total++
	}
	return Evaluation{
		RMSE:             math.Sqrt(sse / float64(total)),
		MaxAbsErr:        maxErr,
		DecisionAccuracy: float64(agree) / float64(total),
		Queries:          total,
	}, nil
}

// simulate runs the exact simulator for one sample.
func simulate(svc core.Service, s Sample) (units.Joules, error) {
	l := core.PaperLosses(s.LossA, s.LossB, false)
	cost, err := core.SimulateEdgeCloud(s.Clients, core.DefaultServer(s.MaxParallel),
		svc, l, core.FillSequential, nil)
	if err != nil {
		return 0, err
	}
	return cost.PerClient(), nil
}
