package surrogate

import (
	"math"
	"testing"
	"time"

	"beesim/internal/core"
	"beesim/internal/routine"
)

func service(t *testing.T) core.Service {
	t.Helper()
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func fitDefault(t *testing.T) (*Surrogate, Config) {
	t.Helper()
	cfg := DefaultConfig(service(t))
	s, err := Fit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfg
}

func TestFitValidation(t *testing.T) {
	svc := service(t)
	cfg := DefaultConfig(svc)
	cfg.Samples = 5
	if _, err := Fit(cfg); err == nil {
		t.Error("tiny sample count accepted")
	}
	cfg = DefaultConfig(svc)
	cfg.ClientsFrom = 0
	if _, err := Fit(cfg); err == nil {
		t.Error("zero ClientsFrom accepted")
	}
	cfg = DefaultConfig(svc)
	cfg.CapacityChoices = nil
	if _, err := Fit(cfg); err == nil {
		t.Error("empty capacities accepted")
	}
	if _, err := FitSamples(svc, nil, 0.1); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := FitSamples(svc, make([]Sample, 30), -1); err == nil {
		t.Error("negative ridge accepted")
	}
}

func TestFitQuality(t *testing.T) {
	s, _ := fitDefault(t)
	if s.TrainR2 < 0.95 {
		t.Fatalf("train R2 = %v, want >= 0.95", s.TrainR2)
	}
	// The loss-A compounding on partially filled slots is the one term
	// the linear basis cannot express exactly; it bounds the RMSE.
	if s.TrainRMSE > 20 {
		t.Fatalf("train RMSE = %v J, want <= 20", s.TrainRMSE)
	}
}

func TestHeldOutEvaluation(t *testing.T) {
	s, cfg := fitDefault(t)
	ev, err := s.Evaluate(cfg, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Queries != 200 {
		t.Fatalf("queries = %d", ev.Queries)
	}
	if ev.RMSE > 20 {
		t.Fatalf("held-out RMSE = %v J, want <= 20", ev.RMSE)
	}
	if ev.DecisionAccuracy < 0.9 {
		t.Fatalf("decision accuracy = %v, want >= 0.9", ev.DecisionAccuracy)
	}
}

func TestPredictTracksSimulatorShape(t *testing.T) {
	s, _ := fitDefault(t)
	// Per-client cost must fall with fleet size at fixed capacity
	// (amortized idle), in both the simulator and the surrogate.
	small, err := s.Predict(100, 35, false, false)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.Predict(1900, 35, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if large >= small {
		t.Fatalf("surrogate not decreasing with fleet size: %v -> %v", small, large)
	}
}

func TestRecommendFastAgreesOnClearCases(t *testing.T) {
	s, _ := fitDefault(t)
	// 100 clients at cap 35: clearly edge. 1900 at cap 35: clearly cloud.
	wins, err := s.RecommendFast(100, 35, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if wins {
		t.Error("surrogate recommended cloud for 100 clients")
	}
	wins, err = s.RecommendFast(1900, 35, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !wins {
		t.Error("surrogate recommended edge for 1900 clients")
	}
}

func TestPredictValidation(t *testing.T) {
	s, _ := fitDefault(t)
	if _, err := s.Predict(0, 10, false, false); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := s.Predict(10, 0, false, false); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	s, cfg := fitDefault(t)
	if _, err := s.Evaluate(cfg, 0, 1); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestLossFeaturesMatter(t *testing.T) {
	s, _ := fitDefault(t)
	base, err := s.Predict(500, 10, false, false)
	if err != nil {
		t.Fatal(err)
	}
	withA, err := s.Predict(500, 10, true, false)
	if err != nil {
		t.Fatal(err)
	}
	withB, err := s.Predict(500, 10, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if float64(withA) <= float64(base) {
		t.Errorf("loss A prediction %v not above base %v", withA, base)
	}
	if float64(withB) <= float64(base) {
		t.Errorf("loss B prediction %v not above base %v", withB, base)
	}
}

func TestDeterministicFit(t *testing.T) {
	a, _ := fitDefault(t)
	b, _ := fitDefault(t)
	if math.Abs(a.TrainRMSE-b.TrainRMSE) > 1e-9 {
		t.Fatal("same-seed fits differ")
	}
}
