// Package benchdiff turns the checked-in benchmark baselines into a
// regression gate: it parses `go test -json` streams (the format of
// BENCH_obs.json / BENCH_parallel.json), reduces each benchmark to its
// best observation across -count runs, and compares a fresh run
// against the baseline with fractional thresholds on ns/op and
// allocs/op.
//
// Timing comparisons take the minimum across runs on both sides — the
// minimum is the least noisy location statistic for benchmark
// latencies (noise only ever adds time) — and the ns threshold is
// deliberately generous so a short smoke re-run (`make bench-diff`)
// does not flap, while a real regression (an accidental O(n) scan, a
// new allocation per event) still trips it. Allocation counts are
// deterministic, so their threshold is tight.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark reduced across its -count runs: minimum
// ns/op and allocs/op, and the number of runs seen.
type Result struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	HasAllocs   bool // true when -benchmem columns were present
	Runs        int
}

// event is the subset of test2json's envelope we need. Output text is
// fragmented across events mid-line, so parsing concatenates all
// Output fields per package before splitting into lines.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Parse reads a `go test -json` stream and returns every benchmark
// result in it, keyed by name (GOMAXPROCS suffix stripped), reduced to
// the minimum across repeated runs.
func Parse(r io.Reader) (map[string]Result, error) {
	chunks := map[string][]string{}
	var pkgs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchdiff: not a go test -json stream: %w", err)
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		if _, seen := chunks[ev.Package]; !seen {
			pkgs = append(pkgs, ev.Package)
		}
		chunks[ev.Package] = append(chunks[ev.Package], ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	out := map[string]Result{}
	for _, pkg := range pkgs {
		for _, line := range strings.Split(strings.Join(chunks[pkg], ""), "\n") {
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			merge(out, res)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark results in input")
	}
	return out, nil
}

// ParseFile is Parse over a file on disk.
func ParseFile(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	defer f.Close()
	res, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return res, nil
}

// MergeInto folds src results into dst, reducing duplicates to the
// minimum — used to stack several baseline files into one map.
func MergeInto(dst, src map[string]Result) {
	for _, r := range src {
		merge(dst, r)
	}
}

func merge(m map[string]Result, r Result) {
	prev, seen := m[r.Name]
	if !seen {
		m[r.Name] = r
		return
	}
	prev.Runs += r.Runs
	prev.NsPerOp = math.Min(prev.NsPerOp, r.NsPerOp)
	if r.HasAllocs {
		if prev.HasAllocs {
			prev.AllocsPerOp = math.Min(prev.AllocsPerOp, r.AllocsPerOp)
			prev.BytesPerOp = math.Min(prev.BytesPerOp, r.BytesPerOp)
		} else {
			prev.AllocsPerOp, prev.BytesPerOp, prev.HasAllocs = r.AllocsPerOp, r.BytesPerOp, true
		}
	}
	m[r.Name] = prev
}

// parseBenchLine parses one testing.B result line:
//
//	BenchmarkName-8   3000   93546 ns/op   765 B/op   0 allocs/op
//
// Custom b.ReportMetric units are tolerated and ignored. Lines that
// are not benchmark results (RUN markers, name announcements) return
// ok=false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return Result{}, false
	}
	res := Result{Name: stripProcSuffix(fields[0]), Runs: 1, NsPerOp: math.NaN()}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
			res.HasAllocs = true
		case "B/op":
			res.BytesPerOp = v
		}
	}
	if math.IsNaN(res.NsPerOp) {
		return Result{}, false
	}
	return res, true
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark
// name so baselines and re-runs compare across core counts.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// Thresholds bound the allowed growth from baseline to current.
type Thresholds struct {
	// NsFrac is the allowed fractional ns/op growth: current may be up
	// to baseline*(1+NsFrac). Generous by default because smoke re-runs
	// use short -benchtime.
	NsFrac float64
	// AllocFrac is the allowed fractional allocs/op growth.
	AllocFrac float64
	// AllocSlack is an absolute allocs/op allowance added on top of
	// AllocFrac, so near-zero baselines don't fail on a single
	// scheduling-dependent allocation.
	AllocSlack float64
}

// DefaultThresholds: 50% timing slack (short smoke runs are noisy; a
// real regression is usually 2x+), 15% + 4 allocs of allocation slack.
func DefaultThresholds() Thresholds {
	return Thresholds{NsFrac: 0.50, AllocFrac: 0.15, AllocSlack: 4}
}

// Row is one benchmark's comparison.
type Row struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	NsRatio    float64 // CurNs / BaseNs
	BaseAllocs float64
	CurAllocs  float64
	HasAllocs  bool // both sides reported allocs
	Missing    bool // in baseline, absent from current run
	Fail       bool
	Why        string
}

// Report is a full comparison, rows sorted by benchmark name.
type Report struct {
	Thresholds Thresholds
	Rows       []Row
}

// Pass reports whether no row failed.
func (r Report) Pass() bool {
	for _, row := range r.Rows {
		if row.Fail {
			return false
		}
	}
	return true
}

// Failures counts failing rows.
func (r Report) Failures() int {
	n := 0
	for _, row := range r.Rows {
		if row.Fail {
			n++
		}
	}
	return n
}

// WriteText writes an aligned ok/FAIL line per benchmark.
func (r Report) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, row := range r.Rows {
		verdict := "ok"
		if row.Fail {
			verdict = "FAIL"
		}
		if row.Missing {
			if _, err := fmt.Fprintf(tw, "%s\t%s\tmissing from current run\n", verdict, row.Name); err != nil {
				return err
			}
			continue
		}
		allocs := ""
		if row.HasAllocs {
			allocs = fmt.Sprintf("\tallocs %g -> %g", row.BaseAllocs, row.CurAllocs)
		}
		if _, err := fmt.Fprintf(tw, "%s\t%s\tns/op %.6g -> %.6g (x%.2f)%s\t%s\n",
			verdict, row.Name, row.BaseNs, row.CurNs, row.NsRatio, allocs, row.Why); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Compare checks every baseline benchmark against the current run.
// Baseline entries missing from the current run fail (a renamed or
// dropped benchmark means the baseline is stale — regenerate it);
// current-run benchmarks absent from the baseline are ignored (new
// benchmarks are fine until the next `make bench-baseline`).
func Compare(baseline, current map[string]Result, th Thresholds) Report {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	rep := Report{Thresholds: th}
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		row := Row{Name: name, BaseNs: base.NsPerOp, BaseAllocs: base.AllocsPerOp}
		if !ok {
			row.Missing, row.Fail = true, true
			row.Why = "regenerate the baseline if the benchmark was renamed or removed"
			rep.Rows = append(rep.Rows, row)
			continue
		}
		row.CurNs = cur.NsPerOp
		if base.NsPerOp > 0 {
			row.NsRatio = cur.NsPerOp / base.NsPerOp
		}
		if row.NsRatio > 1+th.NsFrac {
			row.Fail = true
			row.Why = fmt.Sprintf("ns/op regressed %.0f%% (limit %.0f%%)",
				(row.NsRatio-1)*100, th.NsFrac*100)
		}
		if base.HasAllocs && cur.HasAllocs {
			row.HasAllocs = true
			row.CurAllocs = cur.AllocsPerOp
			limit := base.AllocsPerOp*(1+th.AllocFrac) + th.AllocSlack
			if cur.AllocsPerOp > limit {
				row.Fail = true
				why := fmt.Sprintf("allocs/op regressed %g -> %g (limit %.4g)",
					base.AllocsPerOp, cur.AllocsPerOp, limit)
				if row.Why != "" {
					row.Why += "; " + why
				} else {
					row.Why = why
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
