package benchdiff

import (
	"bytes"
	"strings"
	"testing"
)

// stream builds a minimal go test -json stream. The benchmark result
// line is deliberately split mid-line across two output events, the
// way test2json actually emits it (name announce flushed before the
// timing columns arrive).
func stream(lines ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"beesim"}` + "\n")
	for _, l := range lines {
		b.WriteString(`{"Action":"output","Package":"beesim","Output":"` + l + `"}` + "\n")
	}
	return b.String()
}

func TestParseFragmentedAndSuffixed(t *testing.T) {
	in := stream(
		`goos: linux\n`,
		`BenchmarkFast\n`, // announce line, not a result
		`BenchmarkFast-8         \t`,
		`    3000\t     100 ns/op\n`,
		`BenchmarkFast-8         \t    3000\t     90 ns/op\n`,
		`BenchmarkAlloc-8 \t 1000 \t 200 ns/op \t 64 B/op \t 3 allocs/op\n`,
	)
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	fast, ok := got["BenchmarkFast"]
	if !ok {
		t.Fatalf("suffix not stripped or fragments not joined: %v", got)
	}
	if fast.NsPerOp != 90 || fast.Runs != 2 || fast.HasAllocs {
		t.Fatalf("fast = %+v, want min ns 90 over 2 runs, no allocs", fast)
	}
	alloc := got["BenchmarkAlloc"]
	if alloc.NsPerOp != 200 || !alloc.HasAllocs || alloc.AllocsPerOp != 3 || alloc.BytesPerOp != 64 {
		t.Fatalf("alloc = %+v", alloc)
	}
}

func TestParseRejectsNonJSONAndEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkRaw 10 5 ns/op\n")); err == nil {
		t.Fatal("raw (non -json) bench output must be rejected")
	}
	if _, err := Parse(strings.NewReader(stream(`goos: linux\n`))); err == nil {
		t.Fatal("stream without benchmark results must be rejected")
	}
}

func TestCompareTiming(t *testing.T) {
	th := Thresholds{NsFrac: 0.5, AllocFrac: 0.15, AllocSlack: 0}
	base := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 100, Runs: 3}}

	ok := Compare(base, map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 149}}, th)
	if !ok.Pass() {
		t.Fatalf("49%% growth within a 50%% threshold must pass: %+v", ok.Rows)
	}
	slow := Compare(base, map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 151}}, th)
	if slow.Pass() || slow.Failures() != 1 {
		t.Fatalf("51%% growth must fail: %+v", slow.Rows)
	}
}

func TestCompareAllocs(t *testing.T) {
	th := Thresholds{NsFrac: 10, AllocFrac: 0.15, AllocSlack: 2}
	base := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 10, HasAllocs: true}}
	cur := func(allocs float64) map[string]Result {
		return map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: allocs, HasAllocs: true}}
	}
	// limit = 10*1.15 + 2 = 13.5
	if rep := Compare(base, cur(13), th); !rep.Pass() {
		t.Fatalf("13 allocs under limit 13.5 must pass: %+v", rep.Rows)
	}
	if rep := Compare(base, cur(14), th); rep.Pass() {
		t.Fatal("14 allocs over limit 13.5 must fail")
	}
	// A baseline without -benchmem columns never alloc-fails.
	noMem := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 100}}
	if rep := Compare(noMem, cur(1e6), th); !rep.Pass() {
		t.Fatal("alloc check requires allocs on both sides")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 1},
	}
	cur := map[string]Result{"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1}}
	rep := Compare(base, cur, DefaultThresholds())
	if rep.Pass() || rep.Failures() != 1 {
		t.Fatalf("missing benchmark must fail exactly once: %+v", rep.Rows)
	}
	// Extra current-run benchmarks are ignored.
	cur["BenchmarkNew"] = Result{Name: "BenchmarkNew", NsPerOp: 1e9}
	if got := Compare(base, cur, DefaultThresholds()).Failures(); got != 1 {
		t.Fatalf("extra benchmark must not change failures: %d", got)
	}
}

func TestMergeIntoStacksBaselines(t *testing.T) {
	dst := map[string]Result{"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, Runs: 1}}
	MergeInto(dst, map[string]Result{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 80, Runs: 2},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 7, Runs: 1},
	})
	if dst["BenchmarkA"].NsPerOp != 80 || dst["BenchmarkA"].Runs != 3 || len(dst) != 2 {
		t.Fatalf("merge = %+v", dst)
	}
}

func TestReportTextDeterministicAndReadable(t *testing.T) {
	base := map[string]Result{
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 100},
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 5, HasAllocs: true},
	}
	cur := map[string]Result{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 5, HasAllocs: true},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 100},
	}
	render := func() string {
		var buf bytes.Buffer
		if err := Compare(base, cur, DefaultThresholds()).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	if first != render() {
		t.Fatal("report text must be deterministic")
	}
	if !strings.Contains(first, "FAIL  BenchmarkA") || !strings.Contains(first, "ok    BenchmarkB") {
		t.Fatalf("unexpected report:\n%s", first)
	}
	// Rows come out name-sorted regardless of map order.
	if strings.Index(first, "BenchmarkA") > strings.Index(first, "BenchmarkB") {
		t.Fatalf("rows not sorted:\n%s", first)
	}
}

// TestRealBaselinesParse guards the format contract against the files
// actually checked into the repo root.
func TestRealBaselinesParse(t *testing.T) {
	for _, path := range []string{"../../BENCH_obs.json", "../../BENCH_parallel.json"} {
		res, err := ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(res) == 0 {
			t.Fatalf("%s: no results", path)
		}
		for name, r := range res {
			if r.NsPerOp <= 0 {
				t.Fatalf("%s: %s has ns/op %g", path, name, r.NsPerOp)
			}
		}
	}
}
