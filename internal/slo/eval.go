package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/stats"
)

// Input is everything an evaluation consumes: the run's metrics
// snapshot, its energy ledger entries, and the virtual-time window the
// run covered (required only by per-day energy budgets).
type Input struct {
	Snapshot obs.Snapshot
	Entries  []ledger.Entry
	Window   time.Duration
}

// Result is one objective's verdict. Value and Bound share the
// objective's unit (seconds, Wh, or a ratio); Burn is the error-budget
// burn — the fraction of the objective's headroom consumed, where
// anything above 1 is a breach.
type Result struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Pass   bool    `json:"pass"`
	Value  float64 `json:"value"`
	Bound  float64 `json:"bound"`
	Burn   float64 `json:"burn"`
	Detail string  `json:"detail,omitempty"`
}

// Report is a full evaluation: one result per objective, in spec
// order, so serialized reports are deterministic.
type Report struct {
	Spec    string   `json:"spec"`
	Results []Result `json:"results"`
}

// Pass reports whether every objective passed.
func (r Report) Pass() bool {
	for _, res := range r.Results {
		if !res.Pass {
			return false
		}
	}
	return true
}

// Breaches counts failed objectives.
func (r Report) Breaches() int {
	n := 0
	for _, res := range r.Results {
		if !res.Pass {
			n++
		}
	}
	return n
}

// WriteJSON writes the report as one indented JSON object.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes an aligned human-readable report: one PASS/FAIL
// line per objective with observed value, bound and burn.
func (r Report) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintf(tw, "slo\t%s\n", r.Spec); err != nil {
		return err
	}
	for _, res := range r.Results {
		verdict := "PASS"
		if !res.Pass {
			verdict = "FAIL"
		}
		if _, err := fmt.Fprintf(tw, "%s\t%s\t%s\tvalue=%.6g\tbound=%.6g\tburn=%.3f\t%s\n",
			verdict, res.Name, res.Kind, res.Value, res.Bound, res.Burn, res.Detail); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Evaluate checks every objective of spec against in. A missing metric
// that an objective depends on is an error (the spec does not match the
// run's instrumentation), but an armed metric with zero traffic passes
// vacuously with a "no samples" detail — an idle service breaches no
// SLO. The report lists objectives in spec order.
func Evaluate(spec Spec, in Input) (Report, error) {
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Spec: spec.Name}
	for _, o := range spec.Objectives {
		var res Result
		var err error
		switch o.Kind {
		case KindLatency:
			res, err = evalLatency(o, in)
		case KindEnergy:
			res, err = evalEnergy(o, in)
		case KindAvailability:
			res, err = evalAvailability(o, in)
		default:
			err = fmt.Errorf("slo: unknown kind %q", o.Kind)
		}
		if err != nil {
			return Report{}, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

func evalLatency(o Objective, in Input) (Result, error) {
	res := Result{Name: o.Name, Kind: o.Kind, Bound: o.MaxSeconds}
	h, ok := in.Snapshot.FindHistogram(o.Metric)
	if !ok {
		return Result{}, fmt.Errorf("slo: latency objective %q: histogram %q not in snapshot", o.Name, o.Metric)
	}
	v, ok := h.Quantile(o.Quantile)
	if !ok {
		res.Pass = true
		res.Detail = "no samples"
		return res, nil
	}
	res.Value = v
	res.Burn = v / o.MaxSeconds
	res.Pass = v <= o.MaxSeconds
	res.Detail = fmt.Sprintf("q=%g over %d samples", o.Quantile, h.Count)
	return res, nil
}

func evalEnergy(o Objective, in Input) (Result, error) {
	res := Result{Name: o.Name, Kind: o.Kind}
	var sum stats.Kahan
	n := 0
	for _, e := range in.Entries {
		if e.Dir != ledger.Consume {
			continue
		}
		if o.Hive != "" && e.Hive != o.Hive {
			continue
		}
		sum.Add(e.Joules)
		n++
	}
	res.Value = sum.Sum() / 3600 // joules -> Wh
	bound := o.BudgetWh
	if o.BudgetWhPerDay != 0 {
		if in.Window <= 0 {
			return Result{}, fmt.Errorf("slo: energy objective %q: budget_wh_per_day needs a positive evaluation window", o.Name)
		}
		bound = o.BudgetWhPerDay * in.Window.Hours() / 24
	}
	res.Bound = bound
	res.Burn = res.Value / bound
	res.Pass = res.Value <= bound
	res.Detail = fmt.Sprintf("%d consume entries", n)
	if o.Hive != "" {
		res.Detail += fmt.Sprintf(" for hive %q", o.Hive)
	}
	return res, nil
}

func evalAvailability(o Objective, in Input) (Result, error) {
	res := Result{Name: o.Name, Kind: o.Kind, Bound: o.MinRatio}
	total, ok := in.Snapshot.FindCounter(o.TotalMetric)
	if !ok {
		return Result{}, fmt.Errorf("slo: availability objective %q: counter %q not in snapshot", o.Name, o.TotalMetric)
	}
	// The bad counter may legitimately be absent (it is only registered
	// once the first failure happens on some paths): absent means zero.
	bad, _ := in.Snapshot.FindCounter(o.BadMetric)
	if total <= 0 {
		res.Pass = true
		res.Value = 1
		res.Detail = "no traffic"
		return res, nil
	}
	ratio := (total - bad) / total
	if ratio < 0 {
		ratio = 0
	}
	res.Value = ratio
	// Burn compares the observed failure fraction against the allowed
	// one: (1-ratio)/(1-MinRatio) is 0 with no failures, 1 exactly at
	// the objective, >1 in breach.
	res.Burn = (1 - ratio) / (1 - o.MinRatio)
	res.Pass = ratio >= o.MinRatio
	res.Detail = fmt.Sprintf("%g bad of %g total", bad, total)
	return res, nil
}
