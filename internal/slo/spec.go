// Package slo is the declarative service-level-objective layer: a
// strict-parsed JSON spec of latency, energy and availability
// objectives, and an evaluator that checks them against an obs metrics
// snapshot plus the energy ledger and reports pass/fail with
// error-budget burn.
//
// Everything is keyed on virtual time and deterministic inputs — the
// evaluator never reads a wall clock — so the same run always produces
// the same report, byte for byte, which is what lets an SLO check gate
// CI the way the conservation audit already does.
package slo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Objective kinds.
const (
	// KindLatency bounds a histogram quantile: Quantile of Metric must
	// stay below MaxSeconds.
	KindLatency = "latency"
	// KindEnergy bounds ledger consumption: the Wh consumed (optionally
	// by one hive) must stay below BudgetWh, or BudgetWhPerDay times the
	// evaluation window in days.
	KindEnergy = "energy"
	// KindAvailability bounds a failure ratio built from two counters:
	// (TotalMetric - BadMetric) / TotalMetric must stay at or above
	// MinRatio.
	KindAvailability = "availability"
)

// Objective is one target in a spec. Exactly the fields of its Kind may
// be set; Validate rejects mixtures so a typo'd spec fails loudly
// instead of silently passing.
type Objective struct {
	// Name identifies the objective in reports. Objectives must be
	// strictly ascending by name so specs have one canonical form.
	Name string `json:"name"`
	Kind string `json:"kind"`

	// Latency fields.
	Metric     string  `json:"metric,omitempty"`
	Quantile   float64 `json:"quantile,omitempty"`
	MaxSeconds float64 `json:"max_s,omitempty"`

	// Energy fields. Hive filters ledger entries ("" = whole fleet);
	// exactly one budget form must be set.
	Hive           string  `json:"hive,omitempty"`
	BudgetWh       float64 `json:"budget_wh,omitempty"`
	BudgetWhPerDay float64 `json:"budget_wh_per_day,omitempty"`

	// Availability fields.
	TotalMetric string  `json:"total_metric,omitempty"`
	BadMetric   string  `json:"bad_metric,omitempty"`
	MinRatio    float64 `json:"min_ratio,omitempty"`
}

// Spec is a named set of objectives.
type Spec struct {
	Name       string      `json:"name"`
	Objectives []Objective `json:"objectives"`
}

// ParseSpec decodes and validates a spec from strict JSON: unknown
// fields, trailing data and out-of-range values are all rejected, so a
// spec that parses is a spec the evaluator can run.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("slo: parse spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("slo: parse spec: trailing data after JSON object")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("slo: %w", err)
	}
	return ParseSpec(data)
}

// Validate checks the spec's shape: a name, at least one objective,
// strictly ascending objective names, and per-kind field hygiene with
// every number finite and in range.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("slo: spec needs a name")
	}
	if len(s.Objectives) == 0 {
		return fmt.Errorf("slo: spec %q has no objectives", s.Name)
	}
	for i, o := range s.Objectives {
		if err := o.validate(); err != nil {
			return fmt.Errorf("slo: spec %q objective %d: %w", s.Name, i, err)
		}
		if i > 0 && s.Objectives[i-1].Name >= o.Name {
			return fmt.Errorf("slo: spec %q objectives not strictly ascending by name: %q then %q",
				s.Name, s.Objectives[i-1].Name, o.Name)
		}
	}
	return nil
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("objective needs a name")
	}
	latency := o.Metric != "" || o.Quantile != 0 || o.MaxSeconds != 0
	energy := o.Hive != "" || o.BudgetWh != 0 || o.BudgetWhPerDay != 0
	avail := o.TotalMetric != "" || o.BadMetric != "" || o.MinRatio != 0
	switch o.Kind {
	case KindLatency:
		if energy || avail {
			return fmt.Errorf("latency objective %q carries non-latency fields", o.Name)
		}
		if o.Metric == "" {
			return fmt.Errorf("latency objective %q needs a metric", o.Name)
		}
		if !(o.Quantile > 0 && o.Quantile < 1) || math.IsNaN(o.Quantile) {
			return fmt.Errorf("latency objective %q needs quantile in (0, 1), got %g", o.Name, o.Quantile)
		}
		if !(o.MaxSeconds > 0) || math.IsInf(o.MaxSeconds, 0) || math.IsNaN(o.MaxSeconds) {
			return fmt.Errorf("latency objective %q needs finite max_s > 0, got %g", o.Name, o.MaxSeconds)
		}
	case KindEnergy:
		if latency || avail {
			return fmt.Errorf("energy objective %q carries non-energy fields", o.Name)
		}
		total := o.BudgetWh != 0
		daily := o.BudgetWhPerDay != 0
		if total == daily {
			return fmt.Errorf("energy objective %q needs exactly one of budget_wh / budget_wh_per_day", o.Name)
		}
		if total && (!(o.BudgetWh > 0) || math.IsInf(o.BudgetWh, 0) || math.IsNaN(o.BudgetWh)) {
			return fmt.Errorf("energy objective %q needs finite budget_wh > 0, got %g", o.Name, o.BudgetWh)
		}
		if daily && (!(o.BudgetWhPerDay > 0) || math.IsInf(o.BudgetWhPerDay, 0) || math.IsNaN(o.BudgetWhPerDay)) {
			return fmt.Errorf("energy objective %q needs finite budget_wh_per_day > 0, got %g", o.Name, o.BudgetWhPerDay)
		}
	case KindAvailability:
		if latency || energy {
			return fmt.Errorf("availability objective %q carries non-availability fields", o.Name)
		}
		if o.TotalMetric == "" || o.BadMetric == "" {
			return fmt.Errorf("availability objective %q needs total_metric and bad_metric", o.Name)
		}
		if !(o.MinRatio > 0 && o.MinRatio < 1) || math.IsNaN(o.MinRatio) {
			return fmt.Errorf("availability objective %q needs min_ratio in (0, 1), got %g", o.Name, o.MinRatio)
		}
	default:
		return fmt.Errorf("objective %q has unknown kind %q", o.Name, o.Kind)
	}
	return nil
}
