// Fuzz target for the spec parser: the one surface a hostile or
// fat-fingered SLO file can reach. Run continuously with `make chaos`
// (a short -fuzztime smoke) or standalone:
//
//	go test ./internal/slo -fuzz FuzzSLOSpecJSON -fuzztime 30s

package slo

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzSLOSpecJSON: any input ParseSpec accepts must validate, carry
// only finite in-range numbers and sorted objective names, and survive
// a marshal/parse round trip to stable bytes. Unknown fields, trailing
// data, NaN, negative budgets and unsorted objectives must all be
// rejected.
func FuzzSLOSpecJSON(f *testing.F) {
	f.Add([]byte(`{"name": "upload", "objectives": [{"name": "p99 upload", "kind": "latency", "metric": "netsim_upload_seconds", "quantile": 0.99, "max_s": 120}]}`))
	f.Add([]byte(`{"name": "hive", "objectives": [{"name": "daily", "kind": "energy", "hive": "h1", "budget_wh_per_day": 10}]}`))
	f.Add([]byte(`{"name": "hive", "objectives": [{"name": "total", "kind": "energy", "budget_wh": 250}]}`))
	f.Add([]byte(`{"name": "del", "objectives": [{"name": "delivery", "kind": "availability", "total_metric": "netsim_upload_episodes_total", "bad_metric": "netsim_send_drops_total", "min_ratio": 0.9}]}`))
	f.Add([]byte(`{"name": "multi", "objectives": [
	  {"name": "a latency", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1},
	  {"name": "b energy", "kind": "energy", "budget_wh": 5},
	  {"name": "c delivery", "kind": "availability", "total_metric": "t", "bad_metric": "b", "min_ratio": 0.5}
	]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "x", "objectives": []}`))
	f.Add([]byte(`{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 1.5, "max_s": 1}]}`))
	f.Add([]byte(`{"name": "x", "objectives": [{"name": "a", "kind": "energy", "budget_wh": -5}]}`))
	f.Add([]byte(`{"name": "x", "objectives": [{"name": "b", "kind": "energy", "budget_wh": 5}, {"name": "a", "kind": "energy", "budget_wh": 5}]}`))
	f.Add([]byte(`{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1}]} tail`))
	f.Add([]byte(`{"name": "x", "unknown": 1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted specs are valid by construction...
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted an invalid spec: %v", err)
		}
		// ...carry only finite, in-range numbers and sorted names...
		prev := ""
		for i, o := range spec.Objectives {
			if i > 0 && prev >= o.Name {
				t.Fatalf("accepted unsorted objectives: %q then %q", prev, o.Name)
			}
			prev = o.Name
			for _, v := range []float64{o.Quantile, o.MaxSeconds, o.BudgetWh, o.BudgetWhPerDay, o.MinRatio} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("accepted non-finite or negative value %g in %+v", v, o)
				}
			}
		}
		// ...and round-trip to stable bytes.
		first, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		back, err := ParseSpec(first)
		if err != nil {
			t.Fatalf("re-parse own marshal: %v\n%s", err, first)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal unstable:\n%s\n%s", first, second)
		}
	})
}
