package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"beesim/internal/ledger"
	"beesim/internal/obs"
)

func validSpec() Spec {
	return Spec{
		Name: "test",
		Objectives: []Objective{
			{Name: "daily energy", Kind: KindEnergy, Hive: "h1", BudgetWhPerDay: 10},
			{Name: "p99 upload", Kind: KindLatency, Metric: "netsim_upload_seconds", Quantile: 0.99, MaxSeconds: 120},
			{Name: "upload delivery", Kind: KindAvailability, TotalMetric: "netsim_upload_episodes_total", BadMetric: "netsim_send_drops_total", MinRatio: 0.9},
		},
	}
}

func TestParseSpecStrict(t *testing.T) {
	good := `{
	  "name": "upload",
	  "objectives": [
	    {"name": "p99 upload", "kind": "latency", "metric": "netsim_upload_seconds", "quantile": 0.99, "max_s": 120}
	  ]
	}`
	if _, err := ParseSpec([]byte(good)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := map[string]string{
		"unknown field":  `{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1, "extra": 1}]}`,
		"trailing data":  `{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1}]} tail`,
		"no objectives":  `{"name": "x", "objectives": []}`,
		"no name":        `{"objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1}]}`,
		"bad quantile":   `{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 1.5, "max_s": 1}]}`,
		"negative bound": `{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": -1}]}`,
		"negative budget": `{"name": "x", "objectives": [{"name": "a", "kind": "energy", "budget_wh": -5}]}`,
		"both budgets":    `{"name": "x", "objectives": [{"name": "a", "kind": "energy", "budget_wh": 5, "budget_wh_per_day": 5}]}`,
		"unknown kind":    `{"name": "x", "objectives": [{"name": "a", "kind": "weather", "metric": "m"}]}`,
		"mixed fields":    `{"name": "x", "objectives": [{"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1, "budget_wh": 3}]}`,
		"min_ratio 1":     `{"name": "x", "objectives": [{"name": "a", "kind": "availability", "total_metric": "t", "bad_metric": "b", "min_ratio": 1}]}`,
		"unsorted names": `{"name": "x", "objectives": [
		  {"name": "b", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1},
		  {"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1}
		]}`,
		"duplicate names": `{"name": "x", "objectives": [
		  {"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1},
		  {"name": "a", "kind": "latency", "metric": "m", "quantile": 0.5, "max_s": 1}
		]}`,
	}
	for label, data := range bad {
		if _, err := ParseSpec([]byte(data)); err == nil {
			t.Fatalf("%s: spec accepted:\n%s", label, data)
		}
	}
}

func buildInput() Input {
	r := obs.NewRegistry()
	h := r.Histogram("netsim_upload_seconds")
	for i := 0; i < 99; i++ {
		h.Observe(20)
	}
	h.Observe(100)
	r.Counter("netsim_upload_episodes_total").Add(100)
	r.Counter("netsim_send_drops_total").Add(4)
	entries := []ledger.Entry{
		{Hive: "h1", Dir: ledger.Consume, Joules: 3600 * 12}, // 12 Wh
		{Hive: "h2", Dir: ledger.Consume, Joules: 3600 * 50}, // other hive
		{Hive: "h1", Dir: ledger.Harvest, Joules: 3600 * 99}, // not consumption
	}
	return Input{Snapshot: r.Snapshot(), Entries: entries, Window: 48 * time.Hour}
}

func TestEvaluate(t *testing.T) {
	rep, err := Evaluate(validSpec(), buildInput())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	byName := map[string]Result{}
	for _, res := range rep.Results {
		byName[res.Name] = res
	}
	// Energy: 12 Wh consumed by h1 against 10 Wh/day * 2 days = 20 Wh.
	energy := byName["daily energy"]
	if !energy.Pass || energy.Value != 12 || energy.Bound != 20 {
		t.Fatalf("energy result = %+v", energy)
	}
	if energy.Burn != 12.0/20 {
		t.Fatalf("energy burn = %v", energy.Burn)
	}
	// Latency: p99 of 99x20s + 1x100s is the rank-99 sample (20s bucket).
	lat := byName["p99 upload"]
	if !lat.Pass || lat.Value > 120 || lat.Value < 20 {
		t.Fatalf("latency result = %+v", lat)
	}
	// Availability: 96/100 delivered against 0.9 → burn 0.4.
	avail := byName["upload delivery"]
	if !avail.Pass || avail.Value != 0.96 {
		t.Fatalf("availability result = %+v", avail)
	}
	if got := avail.Burn; got < 0.399 || got > 0.401 {
		t.Fatalf("availability burn = %v, want 0.4", got)
	}
	if !rep.Pass() || rep.Breaches() != 0 {
		t.Fatalf("report should pass: %+v", rep)
	}
}

func TestEvaluateBreaches(t *testing.T) {
	in := buildInput()
	spec := Spec{
		Name: "tight",
		Objectives: []Objective{
			{Name: "p50 upload", Kind: KindLatency, Metric: "netsim_upload_seconds", Quantile: 0.5, MaxSeconds: 1},
			{Name: "strict delivery", Kind: KindAvailability, TotalMetric: "netsim_upload_episodes_total", BadMetric: "netsim_send_drops_total", MinRatio: 0.99},
		},
	}
	rep, err := Evaluate(spec, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() || rep.Breaches() != 2 {
		t.Fatalf("both objectives should breach: %+v", rep)
	}
	for _, res := range rep.Results {
		if res.Burn <= 1 {
			t.Fatalf("breached objective must burn > 1: %+v", res)
		}
	}
}

func TestEvaluateMissingMetricIsError(t *testing.T) {
	in := buildInput()
	spec := Spec{Name: "x", Objectives: []Objective{
		{Name: "a", Kind: KindLatency, Metric: "no_such_histogram", Quantile: 0.5, MaxSeconds: 1},
	}}
	if _, err := Evaluate(spec, in); err == nil {
		t.Fatal("missing histogram must be an error, not a silent pass")
	}
	spec.Objectives[0] = Objective{Name: "a", Kind: KindAvailability,
		TotalMetric: "no_such_counter", BadMetric: "b", MinRatio: 0.5}
	if _, err := Evaluate(spec, in); err == nil {
		t.Fatal("missing total counter must be an error")
	}
}

func TestEvaluateVacuousPasses(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("empty_hist") // armed, zero samples
	r.Counter("episodes")     // armed, zero traffic
	in := Input{Snapshot: r.Snapshot()}
	spec := Spec{Name: "idle", Objectives: []Objective{
		{Name: "delivery", Kind: KindAvailability, TotalMetric: "episodes", BadMetric: "drops", MinRatio: 0.9},
		{Name: "latency", Kind: KindLatency, Metric: "empty_hist", Quantile: 0.99, MaxSeconds: 1},
	}}
	rep, err := Evaluate(spec, in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Fatalf("idle service must pass vacuously: %+v", rep)
	}
	for _, res := range rep.Results {
		if res.Detail != "no samples" && res.Detail != "no traffic" {
			t.Fatalf("vacuous pass must say so: %+v", res)
		}
	}
}

func TestEvaluatePerDayBudgetNeedsWindow(t *testing.T) {
	in := buildInput()
	in.Window = 0
	spec := Spec{Name: "x", Objectives: []Objective{
		{Name: "e", Kind: KindEnergy, BudgetWhPerDay: 10},
	}}
	if _, err := Evaluate(spec, in); err == nil {
		t.Fatal("per-day budget without a window must be an error")
	}
}

func TestReportDeterministicAndRenders(t *testing.T) {
	build := func() []byte {
		rep, err := Evaluate(validSpec(), buildInput())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("equal inputs must serialize to identical report bytes")
	}
	rep, _ := Evaluate(validSpec(), buildInput())
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PASS", "daily energy", "p99 upload", "upload delivery", "burn="} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
}
