// Package core implements the paper's contribution: the client/server
// energy-simulation model of Section VI and the edge-vs-edge+cloud
// placement analysis built on it.
//
// The model has three components, quoted from the paper:
//
//   - Client: "its tasks are to acquire and optionally process and
//     transfer data", initialized with sleep power, a series of actions
//     with time and power, and the wake-up period. Here a client's cycle
//     costs come from internal/routine (Tables I and II).
//   - Server: "receives data from clients and processes them... supports
//     a maximum amount of clients allowed in parallel", serving groups of
//     clients in synchronized time slots. "In a 5-minute cycle, given a
//     data transfer and a model execution's duration of 1 minute, a
//     server can allow 5 time slots."
//   - Allocator: "takes a list of clients, creates servers..., allocates
//     every client to one server, and links them to a wake-up time slot",
//     with one filling policy: "filling a server with clients by filling
//     one slot up to its maximum after another".
//
// Three loss models (Section VI-C) perturb the ideal analysis: a
// compounding 10% energy penalty on saturated slots, a 1.5 s/client
// transfer-time penalty, and a Gaussian per-cycle client loss.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"beesim/internal/power"
	"beesim/internal/rng"
	"beesim/internal/routine"
	"beesim/internal/stats"
	"beesim/internal/units"
)

// Service is the per-cycle cost profile of one smart-beehive service in
// both placements, plus the cloud-side task costs that shape time slots.
type Service struct {
	Name string
	// EdgeOnlyCycle is the edge device's energy per cycle when the model
	// runs at the edge (Table I total).
	EdgeOnlyCycle units.Joules
	// EdgeCloudCycle is the edge device's energy per cycle when the model
	// runs in the cloud (Table II edge total).
	EdgeCloudCycle units.Joules
	// ReceiveDuration / ReceivePower: the audio upload as the server sees
	// it (per slot; a slot's clients transmit simultaneously).
	ReceiveDuration time.Duration
	ReceivePower    units.Watts
	// ExecDuration / ExecPower: one batched model execution per slot.
	ExecDuration time.Duration
	ExecPower    units.Watts
}

// NewService derives a Service from the calibrated device models for the
// given classifier, using the paper's 5-minute cycle.
func NewService(model routine.Model, period time.Duration) (Service, error) {
	pi, cloud := power.DefaultPi3B(), power.DefaultCloud()
	edge, err := routine.Build(pi, cloud, routine.Spec{
		Period: period, Model: model, Placement: routine.EdgeOnly})
	if err != nil {
		return Service{}, fmt.Errorf("core: building edge cycle: %w", err)
	}
	ec, err := routine.Build(pi, cloud, routine.Spec{
		Period: period, Model: model, Placement: routine.EdgeCloud})
	if err != nil {
		return Service{}, fmt.Errorf("core: building edge+cloud cycle: %w", err)
	}
	var exec power.Task
	switch model {
	case routine.SVM:
		exec = cloud.ExecSVM()
	case routine.CNN:
		exec = cloud.ExecCNN()
	default:
		return Service{}, fmt.Errorf("core: unknown model %v", model)
	}
	recv := cloud.Receive()
	return Service{
		Name:            "queen detection (" + model.String() + ")",
		EdgeOnlyCycle:   edge.EdgeEnergy(),
		EdgeCloudCycle:  ec.EdgeEnergy(),
		ReceiveDuration: recv.Duration,
		ReceivePower:    recv.Power(),
		ExecDuration:    exec.Duration,
		ExecPower:       exec.Power(),
	}, nil
}

// ServerSpec describes one cloud server type for the allocator.
type ServerSpec struct {
	// IdlePower is the always-on baseline (44.6 W for the paper's
	// i7-8700K + RTX 2070 host).
	IdlePower units.Watts
	// MaxParallel is the number of clients allowed in parallel per time
	// slot (10 in Figure 6, 35 in Figure 7b).
	MaxParallel int
	// Period is the clients' wake-up period (5 minutes).
	Period time.Duration
}

// DefaultServer returns the paper's server with the given slot capacity.
func DefaultServer(maxParallel int) ServerSpec {
	return ServerSpec{IdlePower: 44.6, MaxParallel: maxParallel, Period: 5 * time.Minute}
}

// Losses configures the Section VI-C loss models. The zero value is the
// ideal, loss-free setting of Section VI-B.
type Losses struct {
	// SlotSaturation enables loss A: each client beyond
	// MaxParallel - SaturationMargin penalizes the slot's energy by
	// SaturationFactor.
	SlotSaturation   bool
	SaturationMargin int
	SaturationFactor float64
	// SaturationLinear applies the penalty as 1 + factor*over instead of
	// the compounding (1+factor)^over. The compounding, whole-slot form
	// reproduces Figure 8a's 186 J floor; Figure 9's "a little bit worse"
	// claim requires the linear, extra-only form (see EXPERIMENTS.md).
	SaturationLinear bool
	// SaturationExtraOnly penalizes only the slot's above-idle burst
	// energy, leaving the idle share untouched.
	SaturationExtraOnly bool
	// TransferPenalty is loss B: extra transfer time per client in a slot
	// (clients of a slot are synchronized and send simultaneously).
	TransferPenalty time.Duration
	// TransferPenaltyPerSlot applies the transfer penalty once per slot
	// (the synchronized group is slowed as one) instead of once per
	// client. Figure 8b's server counts imply per-client; Figure 9's
	// imply per-slot.
	TransferPenaltyPerSlot bool
	// ClientLossFrac/ClientLossSD is loss C: the number of clients lost
	// at each wake-up is drawn from a Gaussian with mean
	// ClientLossFrac * clients and stddev ClientLossSD.
	ClientLossFrac float64
	ClientLossSD   float64
}

// PaperLosses returns the loss parameterization of Section VI-C with the
// selected models enabled.
func PaperLosses(a, b, c bool) Losses {
	l := Losses{}
	if a {
		l.SlotSaturation = true
		l.SaturationMargin = 5
		l.SaturationFactor = 0.10
	}
	if b {
		l.TransferPenalty = 1500 * time.Millisecond
	}
	if c {
		l.ClientLossFrac = 0.10
		l.ClientLossSD = 2
	}
	return l
}

// Figure9Losses returns the all-losses configuration under the milder
// semantics that Figure 9's own numbers imply (3 servers for 1600-1750
// clients at capacity 35; the edge+cloud scenario still winning on
// intervals): the saturation penalty is linear and applies to the slot's
// burst energy only, and the synchronized group pays the transfer
// penalty once per slot. Figure 8's numbers imply the harsher PaperLosses
// semantics; the two figures cannot be produced by one parameterization
// (see EXPERIMENTS.md).
func Figure9Losses() Losses {
	l := PaperLosses(true, true, true)
	l.SaturationLinear = true
	l.SaturationExtraOnly = true
	l.TransferPenaltyPerSlot = true
	return l
}

// SlotDuration returns the length of one time slot serving n parallel
// clients: the (possibly penalized) simultaneous transfer plus one
// batched model execution.
func (s ServerSpec) SlotDuration(svc Service, l Losses, n int) time.Duration {
	penalty := time.Duration(n) * l.TransferPenalty
	if l.TransferPenaltyPerSlot && n > 0 {
		penalty = l.TransferPenalty
	}
	return svc.ReceiveDuration + penalty + svc.ExecDuration
}

// SlotsPerCycle returns how many time slots fit in one wake-up period,
// sized for fully loaded slots (provisioning must assume the worst).
func (s ServerSpec) SlotsPerCycle(svc Service, l Losses) (int, error) {
	d := s.SlotDuration(svc, l, s.MaxParallel)
	if d <= 0 {
		return 0, errors.New("core: non-positive slot duration")
	}
	n := int(s.Period / d)
	if n < 1 {
		return 0, fmt.Errorf("core: slot duration %v exceeds the %v period", d, s.Period)
	}
	return n, nil
}

// Capacity returns the maximum clients one server can serve per cycle.
func (s ServerSpec) Capacity(svc Service, l Losses) (int, error) {
	slots, err := s.SlotsPerCycle(svc, l)
	if err != nil {
		return 0, err
	}
	return slots * s.MaxParallel, nil
}

// FillPolicy selects how the allocator distributes clients over slots.
type FillPolicy int

// Allocation policies.
const (
	// FillSequential is the paper's policy: "filling one slot up to its
	// maximum after another".
	FillSequential FillPolicy = iota
	// FillBalanced spreads clients evenly across the slots of the minimal
	// server set — the ablation alternative that avoids saturation
	// penalties.
	FillBalanced
)

// Server is one allocated server: the number of clients in each of its
// time slots.
type Server struct {
	Slots []int
}

// Clients returns the server's total allocated clients.
func (s Server) Clients() int {
	total := 0
	for _, n := range s.Slots {
		total += n
	}
	return total
}

// Allocation is the result of placing a client fleet onto servers.
type Allocation struct {
	Servers []Server
	// Spec/Service/Losses echo the allocation inputs.
	Spec    ServerSpec
	Service Service
	Losses  Losses
}

// NumServers returns the allocated server count.
func (a Allocation) NumServers() int { return len(a.Servers) }

// Allocate places n clients onto as few servers as the policy needs,
// following the requested filling policy. n must be positive.
func Allocate(n int, spec ServerSpec, svc Service, l Losses, policy FillPolicy) (Allocation, error) {
	if n <= 0 {
		return Allocation{}, errors.New("core: allocation needs at least one client")
	}
	if spec.MaxParallel <= 0 {
		return Allocation{}, errors.New("core: non-positive slot capacity")
	}
	slots, err := spec.SlotsPerCycle(svc, l)
	if err != nil {
		return Allocation{}, err
	}
	capacity := slots * spec.MaxParallel
	nServers := (n + capacity - 1) / capacity

	alloc := Allocation{Spec: spec, Service: svc, Losses: l}
	// One flat backing array for every server's slots: two allocations
	// per call instead of nServers+log(nServers), which matters because
	// every sweep point allocates per evaluated fleet size. The
	// subslices are capacity-capped so they stay disjoint.
	alloc.Servers = make([]Server, 0, nServers)
	flat := make([]int, nServers*slots)
	remaining := n
	for s := 0; s < nServers; s++ {
		srv := Server{Slots: flat[s*slots : (s+1)*slots : (s+1)*slots]}
		take := remaining
		if take > capacity {
			take = capacity
		}
		switch policy {
		case FillSequential:
			for i := 0; i < slots && take > 0; i++ {
				fill := take
				if fill > spec.MaxParallel {
					fill = spec.MaxParallel
				}
				srv.Slots[i] = fill
				take -= fill
			}
		case FillBalanced:
			base := take / slots
			extra := take % slots
			for i := 0; i < slots; i++ {
				srv.Slots[i] = base
				if i < extra {
					srv.Slots[i]++
				}
			}
			take = 0
		default:
			return Allocation{}, fmt.Errorf("core: unknown fill policy %d", policy)
		}
		used := srv.Clients()
		remaining -= used
		alloc.Servers = append(alloc.Servers, srv)
	}
	if remaining != 0 {
		return Allocation{}, fmt.Errorf("core: internal error, %d clients unplaced", remaining)
	}
	return alloc, nil
}

// ServerEnergy returns the energy one allocated server spends over a
// cycle: the idle baseline plus above-idle receive/execute bursts for
// each non-empty slot, with the saturation penalty (loss A) compounding
// per over-threshold client.
func (a Allocation) ServerEnergy(srv Server) units.Joules {
	spec, svc, l := a.Spec, a.Service, a.Losses
	idleShare := spec.IdlePower.Energy(spec.Period) / units.Joules(float64(len(srv.Slots)))
	recvExtra := svc.ReceivePower - spec.IdlePower
	execExtra := svc.ExecPower - spec.IdlePower

	var total stats.Kahan
	for _, n := range srv.Slots {
		var burst units.Joules
		if n > 0 {
			penalty := time.Duration(n) * l.TransferPenalty
			if l.TransferPenaltyPerSlot {
				penalty = l.TransferPenalty
			}
			recvDur := svc.ReceiveDuration + penalty
			burst = recvExtra.Energy(recvDur) + execExtra.Energy(svc.ExecDuration)
		}
		slotEnergy := idleShare + burst
		if l.SlotSaturation {
			threshold := spec.MaxParallel - l.SaturationMargin
			if over := n - threshold; over > 0 {
				factor := math.Pow(1+l.SaturationFactor, float64(over))
				if l.SaturationLinear {
					factor = 1 + l.SaturationFactor*float64(over)
				}
				if l.SaturationExtraOnly {
					slotEnergy = idleShare + units.Joules(float64(burst)*factor)
				} else {
					slotEnergy = units.Joules(float64(slotEnergy) * factor)
				}
			}
		}
		total.Add(float64(slotEnergy))
	}
	return units.Joules(total.Sum())
}

// TotalServerEnergy sums ServerEnergy over the allocation.
func (a Allocation) TotalServerEnergy() units.Joules {
	var total stats.Kahan
	for _, srv := range a.Servers {
		total.Add(float64(a.ServerEnergy(srv)))
	}
	return units.Joules(total.Sum())
}

// CycleCost is the per-cycle energy outcome of one simulated fleet.
type CycleCost struct {
	Placement routine.Placement
	// Clients is the provisioned fleet size; Active the clients that
	// actually woke up this cycle (smaller under loss C).
	Clients int
	Active  int
	Servers int
	// EdgeEnergy and ServerEnergy are fleet totals for the cycle.
	EdgeEnergy   units.Joules
	ServerEnergy units.Joules
}

// Total returns the fleet's total energy for the cycle.
func (c CycleCost) Total() units.Joules { return c.EdgeEnergy + c.ServerEnergy }

// PerClient returns the total energy divided by the provisioned fleet
// size — the y-axis of Figures 6-9 ("the x-axis displays the initial
// number of clients").
func (c CycleCost) PerClient() units.Joules {
	if c.Clients == 0 {
		return 0
	}
	return c.Total() / units.Joules(float64(c.Clients))
}

// PerClientEdge returns the edge share of the per-client cost.
func (c CycleCost) PerClientEdge() units.Joules {
	if c.Clients == 0 {
		return 0
	}
	return c.EdgeEnergy / units.Joules(float64(c.Clients))
}

// PerClientServer returns the server share of the per-client cost.
func (c CycleCost) PerClientServer() units.Joules {
	if c.Clients == 0 {
		return 0
	}
	return c.ServerEnergy / units.Joules(float64(c.Clients))
}

// applyClientLoss draws loss C and returns the surviving client count.
func applyClientLoss(n int, l Losses, r *rng.Source) int {
	if l.ClientLossFrac <= 0 || r == nil {
		return n
	}
	lost := int(math.Round(r.Gaussian(l.ClientLossFrac*float64(n), l.ClientLossSD)))
	if lost < 0 {
		lost = 0
	}
	if lost > n {
		lost = n
	}
	return n - lost
}

// SimulateEdgeCloud evaluates one cycle of the edge+cloud scenario for a
// fleet of n clients. r may be nil when loss C is disabled.
func SimulateEdgeCloud(n int, spec ServerSpec, svc Service, l Losses,
	policy FillPolicy, r *rng.Source) (CycleCost, error) {
	if n <= 0 {
		return CycleCost{}, errors.New("core: need at least one client")
	}
	if l.ClientLossFrac > 0 && r == nil {
		return CycleCost{}, errors.New("core: loss C needs a random source")
	}
	active := applyClientLoss(n, l, r)
	cost := CycleCost{Placement: routine.EdgeCloud, Clients: n, Active: active}
	if active == 0 {
		// Everyone was lost this cycle: no servers wake, no edge cost.
		return cost, nil
	}
	alloc, err := Allocate(active, spec, svc, l, policy)
	if err != nil {
		return CycleCost{}, err
	}
	cost.Servers = alloc.NumServers()
	cost.EdgeEnergy = svc.EdgeCloudCycle * units.Joules(float64(active))
	cost.ServerEnergy = alloc.TotalServerEnergy()
	return cost, nil
}

// SimulateEdgeOnly evaluates one cycle of the edge scenario (no servers).
func SimulateEdgeOnly(n int, svc Service, l Losses, r *rng.Source) (CycleCost, error) {
	if n <= 0 {
		return CycleCost{}, errors.New("core: need at least one client")
	}
	if l.ClientLossFrac > 0 && r == nil {
		return CycleCost{}, errors.New("core: loss C needs a random source")
	}
	active := applyClientLoss(n, l, r)
	return CycleCost{
		Placement:  routine.EdgeOnly,
		Clients:    n,
		Active:     active,
		EdgeEnergy: svc.EdgeOnlyCycle * units.Joules(float64(active)),
	}, nil
}

// Recommendation is a placement decision for a fleet size.
type Recommendation struct {
	Placement routine.Placement
	// EdgeOnlyPerClient and EdgeCloudPerClient are the compared costs.
	EdgeOnlyPerClient  units.Joules
	EdgeCloudPerClient units.Joules
	Servers            int
}

// Margin returns how many joules per client the recommended placement
// saves over the alternative.
func (r Recommendation) Margin() units.Joules {
	d := r.EdgeOnlyPerClient - r.EdgeCloudPerClient
	if d < 0 {
		return -d
	}
	return d
}

// Recommend compares the two scenarios for a fleet of n clients under the
// given losses (loss C evaluated in expectation: mean loss, no sampling)
// and returns the more energy-efficient placement.
func Recommend(n int, spec ServerSpec, svc Service, l Losses) (Recommendation, error) {
	// Expectation form of loss C: deterministic mean loss.
	det := l
	var r *rng.Source
	if det.ClientLossFrac > 0 {
		det.ClientLossSD = 0
		r = rng.New(1) // Gaussian with sd 0 is deterministic
	}
	edge, err := SimulateEdgeOnly(n, svc, det, r)
	if err != nil {
		return Recommendation{}, err
	}
	if det.ClientLossFrac > 0 {
		r = rng.New(1)
	}
	ec, err := SimulateEdgeCloud(n, spec, svc, det, FillSequential, r)
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{
		EdgeOnlyPerClient:  edge.PerClient(),
		EdgeCloudPerClient: ec.PerClient(),
		Servers:            ec.Servers,
	}
	if ec.PerClient() < edge.PerClient() {
		rec.Placement = routine.EdgeCloud
	} else {
		rec.Placement = routine.EdgeOnly
	}
	return rec, nil
}

// MinParallelForViability returns the smallest per-slot capacity at which
// a fully used server makes the edge+cloud scenario at least as efficient
// as the edge scenario — the paper's "26 clients" tipping point.
func MinParallelForViability(svc Service, idle units.Watts, period time.Duration) (int, error) {
	margin := svc.EdgeOnlyCycle - svc.EdgeCloudCycle
	if margin <= 0 {
		return 0, errors.New("core: edge+cloud edge cost not below edge-only cost")
	}
	for cap := 1; cap <= 10000; cap++ {
		spec := ServerSpec{IdlePower: idle, MaxParallel: cap, Period: period}
		capacity, err := spec.Capacity(svc, Losses{})
		if err != nil {
			continue
		}
		alloc, err := Allocate(capacity, spec, svc, Losses{}, FillSequential)
		if err != nil {
			return 0, err
		}
		perClient := float64(alloc.TotalServerEnergy()) / float64(capacity)
		if units.Joules(perClient) <= margin {
			return cap, nil
		}
	}
	return 0, errors.New("core: no viable capacity below 10000")
}
