package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"beesim/internal/routine"
)

func fullServerAlloc(t *testing.T, n int, l Losses) Allocation {
	t.Helper()
	svc := cnnService(t)
	alloc, err := Allocate(n, DefaultServer(10), svc, l, FillSequential)
	if err != nil {
		t.Fatal(err)
	}
	return alloc
}

func TestTimelineCoversCycleExactly(t *testing.T) {
	alloc := fullServerAlloc(t, 95, Losses{})
	spans, err := alloc.ServerTimeline(alloc.Servers[0])
	if err != nil {
		t.Fatal(err)
	}
	if spans[0].Start != 0 {
		t.Fatalf("first span starts at %v", spans[0].Start)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Fatalf("gap between spans %d and %d", i-1, i)
		}
	}
	if last := spans[len(spans)-1]; last.End != 5*time.Minute {
		t.Fatalf("timeline ends at %v, want the full period", last.End)
	}
}

func TestTimelinePhasesAlternate(t *testing.T) {
	alloc := fullServerAlloc(t, 25, Losses{})
	spans, err := alloc.ServerTimeline(alloc.Servers[0])
	if err != nil {
		t.Fatal(err)
	}
	// 25 clients at cap 10: 3 busy slots => 3 receive+execute pairs, then idle.
	var phases []Phase
	for _, s := range spans {
		phases = append(phases, s.Phase)
	}
	want := []Phase{
		PhaseReceive, PhaseExecute,
		PhaseReceive, PhaseExecute,
		PhaseReceive, PhaseExecute,
		PhaseIdle,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase %d = %v, want %v", i, phases[i], want[i])
		}
	}
	// Receive spans carry the client counts of the sequential fill.
	if spans[0].Clients != 10 || spans[4].Clients != 5 {
		t.Fatalf("receive clients = %d, %d", spans[0].Clients, spans[4].Clients)
	}
}

// TestTimelineCrossValidatesAnalyticEnergy is the DES cross-check: the
// integral of the materialized power profile must equal the closed-form
// ServerEnergy for every loss configuration.
func TestTimelineCrossValidatesAnalyticEnergy(t *testing.T) {
	cases := []struct {
		name string
		l    Losses
	}{
		{"no loss", Losses{}},
		{"loss A", PaperLosses(true, false, false)},
		{"loss B", PaperLosses(false, true, false)},
		{"loss A+B", PaperLosses(true, true, false)},
		{"figure 9 semantics", Figure9Losses()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{7, 25, 90, 180} {
				alloc := fullServerAlloc(t, n, tc.l)
				for si, srv := range alloc.Servers {
					spans, err := alloc.ServerTimeline(srv)
					if err != nil {
						t.Fatal(err)
					}
					want := float64(alloc.ServerEnergy(srv))
					got := float64(TimelineEnergy(spans))
					if math.Abs(got-want) > 1e-6*math.Max(1, want) {
						t.Fatalf("n=%d server %d: timeline %v J vs analytic %v J",
							n, si, got, want)
					}
				}
			}
		})
	}
}

func TestPropertyTimelineMatchesAnalytic(t *testing.T) {
	svc := cnnService(t)
	f := func(nRaw uint16, capRaw uint8, a, b bool) bool {
		n := int(nRaw)%800 + 1
		maxPar := int(capRaw)%30 + 5
		l := PaperLosses(a, b, false)
		alloc, err := Allocate(n, DefaultServer(maxPar), svc, l, FillSequential)
		if err != nil {
			// Loss B can make a slot outlast the period at high capacity;
			// that is a legitimate rejection, not a failure.
			return true
		}
		for _, srv := range alloc.Servers {
			spans, err := alloc.ServerTimeline(srv)
			if err != nil {
				return false
			}
			want := float64(alloc.ServerEnergy(srv))
			got := float64(TimelineEnergy(spans))
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotStartSchedule(t *testing.T) {
	alloc := fullServerAlloc(t, 30, Losses{})
	srv := alloc.Servers[0]
	// Slot 0 opens at the cycle start; slot 1 after one slot duration (16 s).
	s0, err := alloc.SlotStart(srv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 {
		t.Fatalf("slot 0 start = %v", s0)
	}
	s1, err := alloc.SlotStart(srv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 16*time.Second {
		t.Fatalf("slot 1 start = %v, want 16 s", s1)
	}
	// An empty slot has no start.
	if _, err := alloc.SlotStart(srv, len(srv.Slots)-1); err == nil {
		t.Fatal("empty slot reported a start")
	}
	if _, err := alloc.SlotStart(srv, 99); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestTimelineBusyFractionMatchesPaperExample(t *testing.T) {
	// The paper: "given a data transfer and a model execution's duration
	// of 1 minute, a server can allow 5 time slots" in a 5-minute cycle.
	// Our CNN service has 16 s slots -> 18 slots; a full server is busy
	// 288 of 300 s.
	alloc := fullServerAlloc(t, 180, Losses{})
	spans, err := alloc.ServerTimeline(alloc.Servers[0])
	if err != nil {
		t.Fatal(err)
	}
	var busy time.Duration
	for _, s := range spans {
		if s.Phase != PhaseIdle {
			busy += s.Duration()
		}
	}
	if busy != 288*time.Second {
		t.Fatalf("busy time = %v, want 288 s", busy)
	}
	_ = routine.CNN
}

func TestPhaseString(t *testing.T) {
	for _, p := range []Phase{PhaseIdle, PhaseReceive, PhaseExecute, Phase(9)} {
		if p.String() == "" {
			t.Fatalf("phase %d unnamed", p)
		}
	}
}
