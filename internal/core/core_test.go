package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"beesim/internal/rng"
	"beesim/internal/routine"
	"beesim/internal/units"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func cnnService(t *testing.T) Service {
	t.Helper()
	svc, err := NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func svmService(t *testing.T) Service {
	t.Helper()
	svc, err := NewService(routine.SVM, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestNewServiceCosts(t *testing.T) {
	svc := cnnService(t)
	if !almostEq(float64(svc.EdgeOnlyCycle), 367.5, 0.2) {
		t.Errorf("CNN edge-only cycle = %v, want 367.5 J (Table I)", svc.EdgeOnlyCycle)
	}
	if !almostEq(float64(svc.EdgeCloudCycle), 322.0, 0.2) {
		t.Errorf("CNN edge+cloud cycle = %v, want 322.0 J (Table II)", svc.EdgeCloudCycle)
	}
	if svc.ReceiveDuration != 15*time.Second || svc.ExecDuration != time.Second {
		t.Errorf("cloud task durations = %v/%v", svc.ReceiveDuration, svc.ExecDuration)
	}
}

func TestSlotsPerCycle(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	slots, err := spec.SlotsPerCycle(svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	// 300 s / (15 s receive + 1 s exec) = 18 slots.
	if slots != 18 {
		t.Fatalf("slots = %d, want 18", slots)
	}
	cap, err := spec.Capacity(svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if cap != 180 {
		t.Fatalf("capacity = %d, want 180", cap)
	}
}

func TestSlotsPerCycleWithTransferPenalty(t *testing.T) {
	// Loss B at cap 10: slot = 15 + 10*1.5 + 1 = 31 s -> 9 slots, 90 cap.
	svc := cnnService(t)
	spec := DefaultServer(10)
	l := PaperLosses(false, true, false)
	slots, err := spec.SlotsPerCycle(svc, l)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 9 {
		t.Fatalf("slots with loss B = %d, want 9", slots)
	}
}

func TestSlotsErrorWhenSlotTooLong(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(300) // 15 + 450 + 1 s > 300 s period
	l := PaperLosses(false, true, false)
	if _, err := spec.SlotsPerCycle(svc, l); err == nil {
		t.Fatal("oversize slot accepted")
	}
}

func TestAllocateSequentialPolicy(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	alloc, err := Allocate(25, spec, svc, Losses{}, FillSequential)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumServers() != 1 {
		t.Fatalf("servers = %d, want 1", alloc.NumServers())
	}
	slots := alloc.Servers[0].Slots
	if slots[0] != 10 || slots[1] != 10 || slots[2] != 5 || slots[3] != 0 {
		t.Fatalf("sequential fill = %v", slots[:4])
	}
}

func TestAllocateBalancedPolicy(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	alloc, err := Allocate(25, spec, svc, Losses{}, FillBalanced)
	if err != nil {
		t.Fatal(err)
	}
	slots := alloc.Servers[0].Slots
	// 25 over 18 slots: 7 slots of 2, 11 of 1.
	min, max := slots[0], slots[0]
	total := 0
	for _, n := range slots {
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if total != 25 || max-min > 1 {
		t.Fatalf("balanced fill = %v (total %d)", slots, total)
	}
}

func TestAllocateMultiServer(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	alloc, err := Allocate(400, spec, svc, Losses{}, FillSequential)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 180: 400 clients need 3 servers (180+180+40).
	if alloc.NumServers() != 3 {
		t.Fatalf("servers = %d, want 3", alloc.NumServers())
	}
	if alloc.Servers[0].Clients() != 180 || alloc.Servers[2].Clients() != 40 {
		t.Fatalf("fill = %d/%d/%d", alloc.Servers[0].Clients(),
			alloc.Servers[1].Clients(), alloc.Servers[2].Clients())
	}
}

func TestAllocateErrors(t *testing.T) {
	svc := cnnService(t)
	if _, err := Allocate(0, DefaultServer(10), svc, Losses{}, FillSequential); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Allocate(5, DefaultServer(0), svc, Losses{}, FillSequential); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Allocate(5, DefaultServer(10), svc, Losses{}, FillPolicy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPropertyAllocationTotality: every client is placed exactly once, no
// slot exceeds capacity, and the server count is the ceiling division.
func TestPropertyAllocationTotality(t *testing.T) {
	svc := cnnService(t)
	f := func(nRaw uint16, capRaw, policyRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		maxPar := int(capRaw)%40 + 1
		policy := FillPolicy(int(policyRaw) % 2)
		spec := DefaultServer(maxPar)
		alloc, err := Allocate(n, spec, svc, Losses{}, policy)
		if err != nil {
			return false
		}
		capacity, err := spec.Capacity(svc, Losses{})
		if err != nil {
			return false
		}
		total := 0
		for _, srv := range alloc.Servers {
			for _, cnt := range srv.Slots {
				if cnt < 0 || cnt > maxPar {
					return false
				}
				total += cnt
			}
		}
		wantServers := (n + capacity - 1) / capacity
		return total == n && alloc.NumServers() == wantServers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFigure6ServerFloor: the fully subscribed server's per-client cost
// converges to ~116 J (paper) and the best end-to-end cost to ~438 J.
func TestFigure6ServerFloor(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	cost, err := SimulateEdgeCloud(180, spec, svc, Losses{}, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	perServer := float64(cost.PerClientServer())
	if !almostEq(perServer, 116, 2) {
		t.Errorf("full-server cost = %.1f J/client, want ~116 J", perServer)
	}
	if !almostEq(float64(cost.PerClient()), 438, 3) {
		t.Errorf("best end-to-end = %.1f J/client, want ~438 J", float64(cost.PerClient()))
	}
	if !almostEq(float64(cost.PerClientEdge()), 322, 0.5) {
		t.Errorf("edge share = %.1f, want 322 J", float64(cost.PerClientEdge()))
	}
}

// TestFigure6EdgeFlat: the edge-only per-client cost is independent of
// fleet size.
func TestFigure6EdgeFlat(t *testing.T) {
	svc := cnnService(t)
	for _, n := range []int{10, 50, 200, 400} {
		cost, err := SimulateEdgeOnly(n, svc, Losses{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(float64(cost.PerClient()), 367.5, 0.2) {
			t.Fatalf("edge-only per-client at n=%d: %v", n, cost.PerClient())
		}
	}
}

// TestTippingPoint26: the paper's "26 clients are the tipping point when
// the edge+cloud scenario can become more energy efficient".
func TestTippingPoint26(t *testing.T) {
	svc := cnnService(t)
	min, err := MinParallelForViability(svc, 44.6, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if min != 26 {
		t.Fatalf("viability tipping point = %d clients/slot, want 26", min)
	}
}

// TestFigure7Crossovers checks the cap-35 milestones: crossover near 406
// clients, the 12.5 J peak advantage at 630, and a permanent win from
// ~803 clients.
func TestFigure7Crossovers(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(35)

	perClientDiff := func(n int) float64 {
		ec, err := SimulateEdgeCloud(n, spec, svc, Losses{}, FillSequential, nil)
		if err != nil {
			t.Fatal(err)
		}
		edge, err := SimulateEdgeOnly(n, svc, Losses{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(edge.PerClient() - ec.PerClient()) // >0: edge+cloud wins
	}

	// First crossover: within a few clients of 406.
	first := 0
	for n := 100; n <= 600; n++ {
		if perClientDiff(n) > 0 {
			first = n
			break
		}
	}
	if first < 400 || first > 412 {
		t.Errorf("first crossover at %d clients, want ~406", first)
	}

	// Peak advantage at 630 clients (one full server), ~12.5 J.
	best, bestN := -1.0, 0
	for n := 100; n <= 700; n++ {
		if d := perClientDiff(n); d > best {
			best, bestN = d, n
		}
	}
	if bestN != 630 {
		t.Errorf("peak advantage at %d clients, want 630", bestN)
	}
	if !almostEq(best, 12.5, 1.0) {
		t.Errorf("peak advantage = %.2f J, want ~12.5 J", best)
	}

	// Permanent win from ~803 clients (paper). Our exact edge margin is
	// 45.44 J vs the paper's rounded 45.5 J, which shifts the boundary to
	// 815 — a 1.5% difference documented in EXPERIMENTS.md.
	permanent := 0
	for n := 631; n <= 2000; n++ {
		if perClientDiff(n) > 0 {
			if permanent == 0 {
				permanent = n
			}
		} else {
			permanent = 0
		}
	}
	if permanent < 795 || permanent > 820 {
		t.Errorf("permanent win from %d clients, want ~803-815", permanent)
	}
}

// TestLossASaturation: with loss A the full-server cost converges to
// ~186 J/client (paper Figure 8a).
func TestLossASaturation(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	l := PaperLosses(true, false, false)
	cost, err := SimulateEdgeCloud(180, spec, svc, l, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	perServer := float64(cost.PerClientServer())
	// Compounding 10% on the 5 clients beyond cap-5: x1.1^5 = 1.61.
	if !almostEq(perServer, 186, 4) {
		t.Errorf("loss-A full-server cost = %.1f J/client, want ~186 J", perServer)
	}
}

// TestLossBNeedsMoreServers: the paper's example — 350 clients need 4
// servers under the transfer penalty versus 2 without.
func TestLossBNeedsMoreServers(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	noLoss, err := SimulateEdgeCloud(350, spec, svc, Losses{}, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	withB, err := SimulateEdgeCloud(350, spec, svc, PaperLosses(false, true, false), FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noLoss.Servers != 2 {
		t.Errorf("no-loss servers = %d, want 2", noLoss.Servers)
	}
	if withB.Servers != 4 {
		t.Errorf("loss-B servers = %d, want 4", withB.Servers)
	}
	// And the per-client server cost rises above the no-loss floor.
	if withB.PerClientServer() <= noLoss.PerClientServer() {
		t.Error("loss B did not increase the per-client server cost")
	}
}

// TestLossBFullServerCost: the minimum per-client server cost under loss
// B lands in the paper's announced region (~212 J; our accounting of the
// longer receive burst gives ~228 J — same shape, see EXPERIMENTS.md).
func TestLossBFullServerCost(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	l := PaperLosses(false, true, false)
	cap, err := spec.Capacity(svc, l)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := SimulateEdgeCloud(cap, spec, svc, l, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	perServer := float64(cost.PerClientServer())
	if perServer < 200 || perServer < 116 || perServer > 240 {
		t.Errorf("loss-B floor = %.1f J/client, want in the ~212-230 region", perServer)
	}
}

// TestLossCClientLoss: surviving clients are ~90% of the fleet and the
// per-provisioned-client energy drops accordingly.
func TestLossCClientLoss(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	l := PaperLosses(false, false, true)
	r := rng.New(42)
	var survived, total int
	var perClient float64
	const reps = 200
	for i := 0; i < reps; i++ {
		cost, err := SimulateEdgeCloud(300, spec, svc, l, FillSequential, r)
		if err != nil {
			t.Fatal(err)
		}
		survived += cost.Active
		total += cost.Clients
		perClient += float64(cost.PerClient())
	}
	frac := float64(survived) / float64(total)
	if !almostEq(frac, 0.9, 0.01) {
		t.Errorf("survival fraction = %v, want ~0.9", frac)
	}
	noLoss, err := SimulateEdgeCloud(300, spec, svc, Losses{}, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	if perClient/reps >= float64(noLoss.PerClient()) {
		t.Error("loss C did not lower the apparent per-client energy")
	}
}

func TestLossCNeedsRandSource(t *testing.T) {
	svc := cnnService(t)
	l := PaperLosses(false, false, true)
	if _, err := SimulateEdgeCloud(10, DefaultServer(10), svc, l, FillSequential, nil); err == nil {
		t.Error("loss C without RNG accepted")
	}
	if _, err := SimulateEdgeOnly(10, svc, l, nil); err == nil {
		t.Error("edge-only loss C without RNG accepted")
	}
}

func TestSimulateErrors(t *testing.T) {
	svc := cnnService(t)
	if _, err := SimulateEdgeCloud(0, DefaultServer(10), svc, Losses{}, FillSequential, nil); err == nil {
		t.Error("zero clients accepted (edge+cloud)")
	}
	if _, err := SimulateEdgeOnly(-1, svc, Losses{}, nil); err == nil {
		t.Error("negative clients accepted (edge)")
	}
}

func TestRecommend(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(35)
	small, err := Recommend(50, spec, svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Placement != routine.EdgeOnly {
		t.Errorf("50 clients recommended %v, want edge", small.Placement)
	}
	big, err := Recommend(1000, spec, svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Placement != routine.EdgeCloud {
		t.Errorf("1000 clients recommended %v, want edge+cloud", big.Placement)
	}
	if big.Servers < 1 {
		t.Error("recommendation lost the server count")
	}
	if big.Margin() <= 0 {
		t.Error("margin must be positive")
	}
}

// TestBalancedFillAvoidsSaturation is the ablation: under loss A, the
// balanced policy dodges the compounding penalty the sequential policy
// pays on its packed slots.
func TestBalancedFillAvoidsSaturation(t *testing.T) {
	svc := cnnService(t)
	spec := DefaultServer(10)
	l := PaperLosses(true, false, false)
	// 90 clients on one server: sequential packs 9 slots of 10 (penalized),
	// balanced spreads 5 per slot (below the saturation threshold).
	seq, err := Allocate(90, spec, svc, l, FillSequential)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Allocate(90, spec, svc, l, FillBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if bal.TotalServerEnergy() >= seq.TotalServerEnergy() {
		t.Fatalf("balanced (%v) not below sequential (%v) under loss A",
			bal.TotalServerEnergy(), seq.TotalServerEnergy())
	}
}

// TestSVMServiceMirror: the SVM variant differs only in the tiny exec
// task; crossovers stay in the same region.
func TestSVMServiceMirror(t *testing.T) {
	svc := svmService(t)
	if !almostEq(float64(svc.EdgeOnlyCycle), 366.3, 0.2) {
		t.Errorf("SVM edge-only = %v, want 366.3", svc.EdgeOnlyCycle)
	}
	spec := DefaultServer(10)
	slots, err := spec.SlotsPerCycle(svc, Losses{})
	if err != nil {
		t.Fatal(err)
	}
	// 300 / 15.1 = 19 slots for the SVM service.
	if slots != 19 {
		t.Fatalf("SVM slots = %d, want 19", slots)
	}
}

// TestEnergyAdditivity: fleet totals decompose exactly into edge and
// server parts.
func TestEnergyAdditivity(t *testing.T) {
	svc := cnnService(t)
	cost, err := SimulateEdgeCloud(250, DefaultServer(10), svc, Losses{}, FillSequential, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total() != cost.EdgeEnergy+cost.ServerEnergy {
		t.Fatal("total != edge + server")
	}
	wantEdge := 322.0 * 250
	if !almostEq(float64(cost.EdgeEnergy), wantEdge, 20) {
		t.Fatalf("edge fleet energy = %v, want ~%v", cost.EdgeEnergy, wantEdge)
	}
}

func TestPerClientZeroGuard(t *testing.T) {
	var c CycleCost
	if c.PerClient() != 0 || c.PerClientEdge() != 0 || c.PerClientServer() != 0 {
		t.Fatal("zero-client cost division not guarded")
	}
	_ = units.Joules(0)
}
