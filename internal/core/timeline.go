package core

import (
	"errors"
	"fmt"
	"time"

	"beesim/internal/stats"
	"beesim/internal/units"
)

// This file builds explicit event timelines from allocations — the
// discrete-event view of the analytic model. The paper's server serves
// its time slots back to back within each wake-up cycle; materializing
// that schedule lets tests cross-validate the closed-form energy
// arithmetic against an integration over the actual power profile, and
// lets callers inspect when each hive's slot fires.

// Phase labels one span of a server's cycle.
type Phase int

// Timeline phases.
const (
	// PhaseIdle: the server draws only its baseline.
	PhaseIdle Phase = iota
	// PhaseReceive: a slot's clients are uploading simultaneously.
	PhaseReceive
	// PhaseExecute: the batched model execution for a slot.
	PhaseExecute
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseReceive:
		return "receive"
	case PhaseExecute:
		return "execute"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Span is one contiguous phase of a server's cycle.
type Span struct {
	Phase Phase
	// Slot is the slot index for receive/execute spans (-1 for idle).
	Slot int
	// Clients is the number of uploading clients (receive spans).
	Clients int
	Start   time.Duration
	End     time.Duration
	// Power is the server's draw during the span.
	Power units.Watts
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Energy returns the span's energy.
func (s Span) Energy() units.Joules { return s.Power.Energy(s.Duration()) }

// ServerTimeline materializes one allocated server's cycle as an ordered
// sequence of spans covering exactly [0, Period]. Slots are served back
// to back from the cycle start, empty slots are skipped (the server
// stays idle), and the saturation penalty (loss A) is applied to the
// busy spans' power so the integral matches the analytic slot energy.
func (a Allocation) ServerTimeline(srv Server) ([]Span, error) {
	spec, svc, l := a.Spec, a.Service, a.Losses
	var spans []Span
	cursor := time.Duration(0)
	slotCount := len(srv.Slots)
	if slotCount == 0 {
		return nil, errors.New("core: server has no slots")
	}
	idleShare := spec.IdlePower.Energy(spec.Period) / units.Joules(float64(slotCount))

	appendIdle := func(until time.Duration) {
		if until > cursor {
			spans = append(spans, Span{
				Phase: PhaseIdle, Slot: -1,
				Start: cursor, End: until,
				Power: spec.IdlePower,
			})
			cursor = until
		}
	}

	for i, n := range srv.Slots {
		if n == 0 {
			continue
		}
		penalty := 1.0
		if l.SlotSaturation {
			threshold := spec.MaxParallel - l.SaturationMargin
			if over := n - threshold; over > 0 {
				if l.SaturationLinear {
					penalty = 1 + l.SaturationFactor*float64(over)
				} else {
					p := 1.0
					for k := 0; k < over; k++ {
						p *= 1 + l.SaturationFactor
					}
					penalty = p
				}
			}
		}
		transferPenalty := time.Duration(n) * l.TransferPenalty
		if l.TransferPenaltyPerSlot {
			transferPenalty = l.TransferPenalty
		}
		recvDur := svc.ReceiveDuration + transferPenalty
		recvEnd := cursor + recvDur
		execEnd := recvEnd + svc.ExecDuration
		if execEnd > spec.Period {
			return nil, fmt.Errorf("core: slot %d ends at %v, beyond the %v period",
				i, execEnd, spec.Period)
		}
		recvPower := spec.IdlePower + units.Watts(penalty)*(svc.ReceivePower-spec.IdlePower)
		execPower := spec.IdlePower + units.Watts(penalty)*(svc.ExecPower-spec.IdlePower)
		if l.SlotSaturation && !l.SaturationExtraOnly && penalty > 1 {
			// Whole-slot penalties also inflate the slot's idle share;
			// spread that surcharge over the busy spans so the timeline
			// integral still matches the analytic slot energy.
			surcharge := units.Joules(float64(idleShare) * (penalty - 1))
			busy := recvDur + svc.ExecDuration
			extra := surcharge.Power(busy)
			recvPower += extra
			execPower += extra
		}
		spans = append(spans, Span{
			Phase: PhaseReceive, Slot: i, Clients: n,
			Start: cursor, End: recvEnd,
			Power: recvPower,
		})
		spans = append(spans, Span{
			Phase: PhaseExecute, Slot: i, Clients: n,
			Start: recvEnd, End: execEnd,
			Power: execPower,
		})
		cursor = execEnd
	}
	appendIdle(spec.Period)
	return spans, nil
}

// TimelineEnergy integrates the timeline's power profile.
func TimelineEnergy(spans []Span) units.Joules {
	var total stats.Kahan
	for _, s := range spans {
		total.Add(float64(s.Energy()))
	}
	return units.Joules(total.Sum())
}

// SlotStart returns when a slot's upload window opens within the cycle —
// the instant the allocator's clients in that slot must wake and
// transmit ("every client within a group has to start their
// communication with the server at the same time").
func (a Allocation) SlotStart(srv Server, slot int) (time.Duration, error) {
	if slot < 0 || slot >= len(srv.Slots) {
		return 0, fmt.Errorf("core: slot %d out of range", slot)
	}
	spans, err := a.ServerTimeline(srv)
	if err != nil {
		return 0, err
	}
	for _, s := range spans {
		if s.Phase == PhaseReceive && s.Slot == slot {
			return s.Start, nil
		}
	}
	return 0, fmt.Errorf("core: slot %d is empty", slot)
}
