package sensors

import (
	"math"
	"testing"
	"time"

	"beesim/internal/hive"
	"beesim/internal/stats"
	"beesim/internal/units"
)

var t0 = time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC)

func hiveState() hive.State {
	return hive.State{
		Time:           t0,
		InsideTemp:     34.5,
		InsideHumidity: 0.60,
		Activity:       0.8,
		Queen:          hive.QueenPresent,
	}
}

func TestSHT31Accuracy(t *testing.T) {
	s := NewSHT31(1)
	var temps, rhs stats.Online
	for i := 0; i < 5000; i++ {
		temp, rh := s.Read(t0, hiveState())
		temps.Add(temp.Value)
		rhs.Add(rh.Value)
	}
	if math.Abs(temps.Mean()-34.5) > 0.02 {
		t.Fatalf("temp mean = %v, want ~34.5", temps.Mean())
	}
	if temps.StdDev() > float64(0.2) {
		t.Fatalf("temp noise sigma = %v, want within datasheet 0.2", temps.StdDev())
	}
	if math.Abs(rhs.Mean()-0.60) > 0.002 {
		t.Fatalf("RH mean = %v, want ~0.60", rhs.Mean())
	}
}

func TestSHT31UnitLabels(t *testing.T) {
	s := NewSHT31(1)
	temp, rh := s.Read(t0, hiveState())
	if temp.Unit != "C" || rh.Unit != "RH" {
		t.Fatalf("units = %q/%q", temp.Unit, rh.Unit)
	}
	if !temp.Time.Equal(t0) {
		t.Fatal("timestamp not propagated")
	}
}

func TestSHT31RHClamped(t *testing.T) {
	s := NewSHT31(2)
	st := hiveState()
	st.InsideHumidity = 1.0
	for i := 0; i < 1000; i++ {
		if _, rh := s.Read(t0, st); rh.Value > 1 || rh.Value < 0 {
			t.Fatalf("RH %v escaped [0,1]", rh.Value)
		}
	}
}

func TestCurrentSensorClipsAtFullScale(t *testing.T) {
	c := NewCurrentSensor(3)
	for i := 0; i < 1000; i++ {
		if r := c.Read(t0, 12); r.Value > 5 {
			t.Fatalf("reading %v above +5 A full scale", r.Value)
		}
		if r := c.Read(t0, -12); r.Value < -5 {
			t.Fatalf("reading %v below -5 A full scale", r.Value)
		}
	}
}

func TestCurrentSensorUnbiased(t *testing.T) {
	c := NewCurrentSensor(4)
	var o stats.Online
	for i := 0; i < 5000; i++ {
		o.Add(c.Read(t0, 0.43).Value)
	}
	if math.Abs(o.Mean()-0.43) > 0.005 {
		t.Fatalf("current mean = %v, want 0.43", o.Mean())
	}
}

func TestReadPowerRoundTrip(t *testing.T) {
	c := NewCurrentSensor(5)
	var o stats.Online
	for i := 0; i < 5000; i++ {
		r := c.ReadPower(t0, units.Watts(2.14))
		if r.Unit != "W" {
			t.Fatalf("unit = %q", r.Unit)
		}
		o.Add(r.Value)
	}
	if math.Abs(o.Mean()-2.14) > 0.02 {
		t.Fatalf("power mean = %v, want 2.14", o.Mean())
	}
}

func TestMicrophoneCaptureCost(t *testing.T) {
	m := NewMicrophone()
	if m.SampleRate != 22050 {
		t.Fatalf("sample rate = %d, want 22050 (paper)", m.SampleRate)
	}
	d, e := m.CaptureCost(10 * time.Second)
	if d != 10*time.Second {
		t.Fatalf("capture duration = %v", d)
	}
	if math.Abs(float64(e)-2.5) > 1e-9 {
		t.Fatalf("capture energy = %v, want 2.5 J", e)
	}
}

func TestCameraBurstCost(t *testing.T) {
	c := NewCamera()
	if c.Width != 800 || c.Height != 600 {
		t.Fatalf("resolution = %dx%d, want 800x600", c.Width, c.Height)
	}
	d, e := c.BurstCost(5)
	if d != 5*time.Second {
		t.Fatalf("burst duration = %v, want 5 s (paper)", d)
	}
	if math.Abs(float64(e)-6.0) > 1e-9 {
		t.Fatalf("burst energy = %v, want 6 J", e)
	}
	if d, e := c.BurstCost(0); d != 0 || e != 0 {
		t.Fatal("zero shots must cost nothing")
	}
	if d, e := c.BurstCost(-3); d != 0 || e != 0 {
		t.Fatal("negative shots must cost nothing")
	}
}
