// Package sensors models the measurement hardware of the smart beehive:
// the SHT31 temperature/humidity sensor on the queen excluder, the three
// ±5 A current sensors on the Pi Zero's Grove hat, the USB microphones
// and the camera module at the hive entrance.
//
// Each sensor samples the ground truth (hive state, electrical state)
// with its datasheet accuracy as additive noise, and reports the read
// latency and electrical draw that the routine model charges to the edge
// device's energy budget.
package sensors

import (
	"time"

	"beesim/internal/hive"
	"beesim/internal/rng"
	"beesim/internal/units"
)

// Reading is a scalar sensor observation.
type Reading struct {
	Time  time.Time
	Value float64
	Unit  string
}

// SHT31 is the temperature/humidity sensor (datasheet: ±0.2 °C, ±2 % RH).
type SHT31 struct {
	TempAccuracy units.Celsius
	RHAccuracy   float64
	ReadLatency  time.Duration
	Draw         units.Watts
	r            *rng.Source
}

// NewSHT31 creates the sensor with datasheet characteristics.
func NewSHT31(seed uint64) *SHT31 {
	return &SHT31{
		TempAccuracy: 0.2,
		RHAccuracy:   0.02,
		ReadLatency:  15 * time.Millisecond,
		Draw:         0.005,
		r:            rng.New(seed),
	}
}

// Read samples the hive state.
func (s *SHT31) Read(t time.Time, st hive.State) (temp, rh Reading) {
	temp = Reading{
		Time:  t,
		Value: float64(st.InsideTemp) + s.r.Gaussian(0, float64(s.TempAccuracy)/2),
		Unit:  "C",
	}
	rh = Reading{
		Time:  t,
		Value: float64(st.InsideHumidity.Clamp()) + s.r.Gaussian(0, s.RHAccuracy/2),
		Unit:  "RH",
	}
	if rh.Value < 0 {
		rh.Value = 0
	}
	if rh.Value > 1 {
		rh.Value = 1
	}
	return temp, rh
}

// CurrentSensor is one ±5 A DC/AC Grove current sensor. The deployment
// uses three: both Pis' supplies and the panel-to-battery wire.
type CurrentSensor struct {
	FullScale units.Amperes
	Accuracy  units.Amperes // 1-sigma noise
	r         *rng.Source
}

// NewCurrentSensor creates a ±5 A sensor.
func NewCurrentSensor(seed uint64) *CurrentSensor {
	return &CurrentSensor{FullScale: 5, Accuracy: 0.02, r: rng.New(seed)}
}

// Read samples a true current, clipping at the sensor's full scale.
func (c *CurrentSensor) Read(t time.Time, true_ units.Amperes) Reading {
	v := float64(true_) + c.r.Gaussian(0, float64(c.Accuracy))
	if v > float64(c.FullScale) {
		v = float64(c.FullScale)
	}
	if v < -float64(c.FullScale) {
		v = -float64(c.FullScale)
	}
	return Reading{Time: t, Value: v, Unit: "A"}
}

// ReadPower converts a supply current reading at 5 V into watts, which is
// how the deployment derives the power traces of Figure 2.
func (c *CurrentSensor) ReadPower(t time.Time, truePower units.Watts) Reading {
	i := units.Amperes(float64(truePower) / 5.0)
	r := c.Read(t, i)
	return Reading{Time: t, Value: r.Value * 5.0, Unit: "W"}
}

// Microphone is a USB microphone (20 Hz – 16 kHz response).
type Microphone struct {
	SampleRate int
	Draw       units.Watts
}

// NewMicrophone returns the deployed USB microphone model sampling at the
// paper's 22 050 Hz.
func NewMicrophone() *Microphone {
	return &Microphone{SampleRate: 22050, Draw: 0.25}
}

// CaptureCost returns the time and energy to record one clip of the given
// length (three are captured simultaneously in the routine; each mic
// draws its own power).
func (m *Microphone) CaptureCost(clip time.Duration) (time.Duration, units.Joules) {
	return clip, m.Draw.Energy(clip)
}

// Camera is the Raspberry Pi camera module 2 at the hive entrance.
type Camera struct {
	Width, Height int
	Draw          units.Watts
	PerShot       time.Duration
}

// NewCamera returns the module configured for the routine's 800x600
// captures.
func NewCamera() *Camera {
	return &Camera{Width: 800, Height: 600, Draw: 1.2, PerShot: time.Second}
}

// BurstCost returns the time and energy for n shots spread evenly over
// the burst (the routine takes 5 shots over 5 s).
func (c *Camera) BurstCost(n int) (time.Duration, units.Joules) {
	if n <= 0 {
		return 0, 0
	}
	d := time.Duration(n) * c.PerShot
	return d, c.Draw.Energy(d)
}
