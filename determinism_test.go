package beesim

// The determinism suite: the parallel execution layer's contract is
// that the worker count changes wall-clock time and nothing else. For
// every wired hot path — the figure sweeps, the optimizer search, the
// DSP front end behind a queendetect clip classification, and the
// campaign/replica batching — these tests render the observable output
// (series CSV, ledger JSONL, metrics CSV, raw feature vectors) at
// workers 1, 2 and 8 and require the bytes to be identical.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"beesim/internal/audio"
	"beesim/internal/deployment"
	"beesim/internal/dsp"
	"beesim/internal/experiments"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/optimizer"
	"beesim/internal/parallel"
	"beesim/internal/queendetect"
	"beesim/internal/report"
	"beesim/internal/services"
	"beesim/internal/swarm"
)

// determinismWorkers are the worker counts every hot path is checked
// at: the serial legacy path, a small pool, and an oversubscribed one.
var determinismWorkers = []int{1, 2, 8}

// renderSweep runs one instrumented sweep and flattens everything a
// caller can observe — points, series CSV, ledger JSONL, metrics CSV —
// into one byte slice.
func renderSweep(t *testing.T, cfg experiments.SweepConfig, workers int) []byte {
	t.Helper()
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	cfg.Ledger = ledger.New()
	pts, err := experiments.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	edge, cloud, servers, err := experiments.SweepSeries(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.WriteSeriesCSV(&buf, "clients", edge, cloud, servers); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Ledger.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteMetricsCSV(&buf, maskWorkers(cfg.Metrics.Snapshot())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// maskWorkers drops the parallel_workers gauge from a snapshot: it is
// the one metric that legitimately names the worker count, so it is
// excluded before the byte comparison. Everything else must match.
func maskWorkers(s obs.Snapshot) obs.Snapshot {
	kept := s.Gauges[:0:0]
	for _, g := range s.Gauges {
		if g.Name != parallel.MetricWorkers {
			kept = append(kept, g)
		}
	}
	s.Gauges = kept
	return s
}

// TestSweepDeterministicAcrossWorkers is the tentpole invariant for
// the figure sweeps: workers 1, 2 and 8 produce byte-identical CSV,
// ledger JSONL and metrics CSV for every figure of the paper.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps are slow; run without -short")
	}
	cases := []struct {
		name string
		cfg  func() (experiments.SweepConfig, error)
	}{
		{"figure6", experiments.Figure6Config},
		{"figure7cap35", func() (experiments.SweepConfig, error) { return experiments.Figure7Config(35) }},
		{"figure8all", func() (experiments.SweepConfig, error) { return experiments.Figure8Config(experiments.LossAll) }},
		{"figure8lossC", func() (experiments.SweepConfig, error) { return experiments.Figure8Config(experiments.LossC) }},
		{"figure9", experiments.Figure9Config},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.cfg()
			if err != nil {
				t.Fatal(err)
			}
			want := renderSweep(t, cfg, determinismWorkers[0])
			if len(want) == 0 {
				t.Fatal("empty render")
			}
			for _, w := range determinismWorkers[1:] {
				if got := renderSweep(t, cfg, w); !bytes.Equal(got, want) {
					t.Errorf("workers=%d output diverged from workers=1 (%d vs %d bytes)",
						w, len(got), len(want))
				}
			}
		})
	}
}

// TestOptimizeDeterministicAcrossWorkers pins the optimizer hot path:
// the full Result and the metrics snapshot CSV are identical for every
// worker count.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	req := optimizer.Requirements{
		Hives:        400,
		Services:     []services.Kind{services.QueenDetection, services.SwarmPrediction},
		MaxStaleness: 2 * time.Hour,
		Losses:       PaperLosses(true, true, false),
	}
	run := func(workers int) (optimizer.Result, []byte) {
		opts := optimizer.DefaultOptions()
		opts.Workers = workers
		opts.Metrics = obs.NewRegistry()
		res, err := optimizer.Optimize(req, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteMetricsCSV(&buf, maskWorkers(opts.Metrics.Snapshot())); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	wantRes, wantCSV := run(determinismWorkers[0])
	for _, w := range determinismWorkers[1:] {
		gotRes, gotCSV := run(w)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("workers=%d optimizer result diverged from workers=1", w)
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Errorf("workers=%d optimizer metrics diverged from workers=1", w)
		}
	}
}

// TestQueendetectClipDeterministicAcrossWorkers drives the DSP hot
// path end to end: the mel front end and the derived piping score of
// one synthesized clip must not depend on the process-default worker
// count (which the internal STFT/mel chunking picks up), whether the
// precomputation caches are cold or warm.
func TestQueendetectClipDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetDefault(0)
	corpus, err := SynthesizeCorpus(DefaultAudioConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	clip := corpus[0].Samples

	render := func(workers int) []byte {
		parallel.SetDefault(workers)
		dsp.ResetCaches() // cold caches must give the same bytes as warm
		vec, err := queendetect.VectorFeatures(clip, audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		img, err := queendetectImage(clip)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := swarm.ScoreClips([][]float64{clip, corpus[1].Samples}, audio.SampleRate, workers)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(struct {
			Vec    []float64
			Img    []float64
			Scores []float64
		}{vec, img, scores})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := render(determinismWorkers[0])
	for _, w := range determinismWorkers[1:] {
		if got := render(w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d clip features diverged from workers=1", w)
		}
	}
	// Warm-cache rerun at the last worker count: memoized twiddles,
	// windows and filterbanks must be bit-identical to the cold build.
	if got := func() []byte {
		vec, err := queendetect.VectorFeatures(clip, audio.SampleRate)
		if err != nil {
			t.Fatal(err)
		}
		img, err := queendetectImage(clip)
		if err != nil {
			t.Fatal(err)
		}
		scores, err := swarm.ScoreClips([][]float64{clip, corpus[1].Samples}, audio.SampleRate, 8)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(struct {
			Vec    []float64
			Img    []float64
			Scores []float64
		}{vec, img, scores})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}(); !bytes.Equal(got, want) {
		t.Error("warm-cache features diverged from cold-cache features")
	}
}

// queendetectImage renders the CNN-sized image features of a clip as a
// flat vector.
func queendetectImage(clip []float64) ([]float64, error) {
	img, err := queendetect.ImageFeatures(clip, audio.SampleRate, 32)
	if err != nil {
		return nil, err
	}
	return img.Flatten(), nil
}

// TestCampaignAndReplicasDeterministicAcrossWorkers covers the batch
// hot path: the Section-IV campaign statistics and a deployment
// replica ensemble are identical for every worker count.
func TestCampaignAndReplicasDeterministicAcrossWorkers(t *testing.T) {
	wantStats, err := experiments.RoutineStatsWorkers(319, determinismWorkers[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := deployment.DefaultConfig()
	cfg.Days = 1
	wantTraces, err := deployment.RunReplicas(cfg, 3, determinismWorkers[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range determinismWorkers[1:] {
		st, err := experiments.RoutineStatsWorkers(319, w)
		if err != nil {
			t.Fatal(err)
		}
		if st != wantStats {
			t.Errorf("workers=%d campaign stats diverged: %+v vs %+v", w, st, wantStats)
		}
		traces, err := deployment.RunReplicas(cfg, 3, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(traces, wantTraces) {
			t.Errorf("workers=%d replica traces diverged from workers=1", w)
		}
	}
}

// TestWorkersRecordedInMetrics pins the obs plumbing: an instrumented
// sweep snapshot names the worker count it ran at.
func TestWorkersRecordedInMetrics(t *testing.T) {
	cfg, err := experiments.Figure6Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.From, cfg.To = 10, 20
	cfg.Workers = 3
	cfg.Metrics = obs.NewRegistry()
	if _, err := experiments.Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Metrics.Gauge(parallel.MetricWorkers).Value(); got != 3 {
		t.Fatalf("%s = %v, want 3", parallel.MetricWorkers, got)
	}
}

// TestExampleSweepMatchesScalarRun guards against the parallel commit
// pass reordering points: client counts must ascend exactly as the
// serial loop produced them.
func TestExampleSweepMatchesScalarRun(t *testing.T) {
	cfg, err := experiments.Figure8Config(experiments.LossC)
	if err != nil {
		t.Fatal(err)
	}
	cfg.From, cfg.To, cfg.Workers = 10, 60, 8
	pts, err := experiments.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if want := 10 + i; p.Clients != want {
			t.Fatalf("point %d: clients = %d, want %d", i, p.Clients, want)
		}
	}
}
