# beesim build/verify loop. Pure stdlib Go — no external tools needed.

GO ?= go

.PHONY: all build test vet race bench verify bench-baseline

all: verify

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/hivereport

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The protocol server, the DES engine, and the energy ledger are the
# concurrency-bearing packages; run them under the race detector on
# every verify.
race:
	$(GO) test -race ./internal/hivenet/... ./internal/des/... \
		./internal/ledger/... ./internal/deployment/...

# The tier-1 gate: what CI and pre-commit runs.
verify: build vet test race

# Benchmarks double as the reproduction report (paper figures as custom
# metrics) and as the observability-overhead check (BenchmarkDESLoop*).
bench:
	$(GO) test -bench=. -benchmem .

obs-bench:
	$(GO) test -run xxx -bench 'BenchmarkDESLoop' -benchtime 3000x -count 5 .

# Machine-readable baseline of the observability-overhead benchmarks
# (DES loop with obs/ledger on and off, ledger append/audit/export).
# Compare a branch against a committed BENCH_obs.json to spot probe
# regressions.
bench-baseline:
	$(GO) test -json -run xxx -bench 'BenchmarkDESLoop' -benchtime 3000x -count 3 . \
		> BENCH_obs.json
	$(GO) test -json -run xxx -bench 'BenchmarkLedger' -benchmem ./internal/ledger/ \
		>> BENCH_obs.json
