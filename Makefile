# beesim build/verify loop. Pure stdlib Go — no external tools needed.

GO ?= go

.PHONY: all build test vet lint lint-fix race bench verify bench-baseline bench-diff smoke chaos soak

all: verify

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/hivereport

vet:
	$(GO) vet ./...

# beelint: the in-tree go/types linter for determinism and unit safety
# (wall-clock reads, unseeded randomness, map-iteration-order leaks,
# mixed-unit float casts, goroutines in DES handlers, naive Joule
# accumulation, captured-state races in parallel task closures,
# non-exhaustive enum switches, dropped write-path errors) — including
# the module-wide interprocedural pass. The gate ratchets against the
# checked-in baseline: findings beyond .beelint-baseline.json fail,
# paid-off entries warn. The second run smoke-tests the SARIF emitter
# CI annotations consume. See docs/LINTING.md.
lint:
	$(GO) run ./cmd/beelint -baseline .beelint-baseline.json ./...
	$(GO) run ./cmd/beelint -format sarif ./... > /dev/null

# Apply the mechanical rewrites (sorted map iteration, compensated
# summation, seeded-rng substitution) to any fixable findings.
lint-fix:
	$(GO) run ./cmd/beelint -fix ./...

test:
	$(GO) test ./...

# Every goroutine-spawning package plus its direct drivers runs under
# the race detector on every verify: the protocol server (hivenet), the
# DES engine, the mutex-guarded ledger/obs/store layers, the worker
# pool itself (parallel), and the fan-out call sites in
# swarm/experiments/deployment/optimizer/dsp/routine/queendetect — the
# same closures the sharedcapture analyzer checks statically.
race:
	$(GO) test -race ./internal/hivenet/... ./internal/des/... \
		./internal/ledger/... ./internal/deployment/... \
		./internal/obs/... ./internal/store/... \
		./internal/swarm/... ./internal/experiments/... \
		./internal/parallel/... ./internal/optimizer/... \
		./internal/dsp/... ./internal/faults/... ./internal/slo/... \
		./internal/routine/... ./internal/queendetect/... \
		./internal/loadgen/...

# End-to-end smoke of the -workers plumbing: a multi-worker scenario
# run must complete and pass its own conservation audit.
smoke:
	$(GO) run ./cmd/apiarysim scenario -workers 4 -ledger $$(mktemp -t beesim-smoke-XXXXXX.jsonl)

# Chaos gate: the fault-injection soak (loss rates 0-100%, no panics,
# no stuck DES, monotone delivered-count) plus a fuzz smoke over the
# plan parser and retry policy. go test runs one fuzz target per
# invocation, so each gets its own 10 s budget.
chaos:
	$(GO) test -run 'Chaos' ./internal/faults/ .
	$(GO) test -run xxx -fuzz 'FuzzFaultPlanJSON' -fuzztime 10s ./internal/faults/
	$(GO) test -run xxx -fuzz 'FuzzRetryPolicy' -fuzztime 10s ./internal/faults/
	$(GO) test -run xxx -fuzz 'FuzzSLOSpecJSON' -fuzztime 10s ./internal/slo/
	$(GO) test -run xxx -fuzz 'FuzzTraceparent' -fuzztime 10s ./internal/hivenet/
	$(GO) test -run xxx -fuzz 'FuzzLintDirective' -fuzztime 10s ./internal/lint/
	$(GO) test -run xxx -fuzz 'FuzzRFFT' -fuzztime 10s ./internal/dsp/
	$(GO) test -run xxx -fuzz 'FuzzLoadSpecJSON' -fuzztime 10s ./internal/loadgen/
	$(GO) test -run xxx -fuzz 'FuzzAdmissionFrame' -fuzztime 10s ./internal/hivenet/

# The full fleet soak: the checked-in fleet_small campaign replayed
# twice against live server shards with leak accounting, behind a build
# tag so the tier-1 gate stays fast (verify runs the short-mode stress
# in `race` instead).
soak:
	$(GO) test -tags soak -race -run 'TestSoak' -v ./internal/loadgen/

# The tier-1 gate: what CI and pre-commit runs.
verify: build vet lint test race chaos smoke bench-diff

# Benchmarks double as the reproduction report (paper figures as custom
# metrics) and as the observability-overhead check (BenchmarkDESLoop*).
bench:
	$(GO) test -bench=. -benchmem .

obs-bench:
	$(GO) test -run xxx -bench 'BenchmarkDESLoop' -benchtime 3000x -count 5 .

# Machine-readable baseline of the observability-overhead benchmarks
# (DES loop with obs/ledger on and off, ledger append/audit/export).
# Compare a branch against a committed BENCH_obs.json to spot probe
# regressions.
bench-baseline:
	$(GO) test -json -run xxx -bench 'BenchmarkDESLoop' -benchtime 3000x -count 3 . \
		> BENCH_obs.json
	$(GO) test -json -run xxx -bench 'BenchmarkLedger' -benchmem ./internal/ledger/ \
		>> BENCH_obs.json
	$(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkSpanStart|BenchmarkHistogramObserveExemplar' \
		./internal/obs/ >> BENCH_obs.json
	$(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkSweep(Serial|Parallel)$$|BenchmarkMelSpectrogram(Cold|Cached|Plan)$$|BenchmarkRFFT$$|BenchmarkOptimizeParallel|BenchmarkCampaignParallel' \
		-benchtime 10x . > BENCH_parallel.json
	$(GO) test -json -run xxx -bench 'BenchmarkLintModule' -benchtime 1x -count 3 \
		./internal/lint/ > BENCH_lint.json
	$(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkLoadgenSchedule|BenchmarkSimulateProbe' \
		./internal/loadgen/ > BENCH_load.json
	$(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkServerHandleUpload' -benchtime 200x \
		./internal/hivenet/ >> BENCH_load.json

# Perf regression gate: re-run the baseline benchmark sets in smoke
# mode (short -benchtime keeps verify fast, -count 3 lets benchdiff
# take the min and shed scheduler noise) and diff against the
# committed baselines with cmd/benchdiff. The smoke ns/op threshold is
# generous (-ns-frac 0.75) because smoke runs are noisy; a real
# regression is usually 2x+. allocs/op stays tight — it is
# deterministic. See docs/PERFORMANCE.md for the methodology.
bench-diff:
	@tmp=$$(mktemp -t beesim-bench-XXXXXX.json); \
	status=1; \
	{ $(GO) test -json -run xxx -bench 'BenchmarkDESLoop' -benchtime 300x -count 3 . > $$tmp && \
	  $(GO) test -json -run xxx -bench 'BenchmarkLedger' -benchmem -count 3 ./internal/ledger/ >> $$tmp && \
	  $(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkSpanStart|BenchmarkHistogramObserveExemplar' \
		./internal/obs/ >> $$tmp && \
	  $(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkSweep(Serial|Parallel)$$|BenchmarkMelSpectrogram(Cold|Cached|Plan)$$|BenchmarkRFFT$$|BenchmarkOptimizeParallel|BenchmarkCampaignParallel' \
		-benchtime 10x . >> $$tmp && \
	  $(GO) test -json -run xxx -bench 'BenchmarkLintModule' -benchtime 1x -count 3 \
		./internal/lint/ >> $$tmp && \
	  $(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkLoadgenSchedule|BenchmarkSimulateProbe' \
		-benchtime 100x ./internal/loadgen/ >> $$tmp && \
	  $(GO) test -json -run xxx -benchmem -count 3 \
		-bench 'BenchmarkServerHandleUpload' -benchtime 50x \
		./internal/hivenet/ >> $$tmp && \
	  $(GO) run ./cmd/benchdiff -ns-frac 0.75 \
		-baseline BENCH_obs.json -baseline BENCH_parallel.json -baseline BENCH_lint.json \
		-baseline BENCH_load.json $$tmp; } && status=0; \
	rm -f $$tmp; exit $$status
