# beesim build/verify loop. Pure stdlib Go — no external tools needed.

GO ?= go

.PHONY: all build test vet race bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The protocol server and the DES engine are the concurrency-bearing
# packages; run them under the race detector on every verify.
race:
	$(GO) test -race ./internal/hivenet/... ./internal/des/...

# The tier-1 gate: what CI and pre-commit runs.
verify: build vet test race

# Benchmarks double as the reproduction report (paper figures as custom
# metrics) and as the observability-overhead check (BenchmarkDESLoop*).
bench:
	$(GO) test -bench=. -benchmem .

obs-bench:
	$(GO) test -run xxx -bench 'BenchmarkDESLoop' -benchtime 3000x -count 5 .
