module beesim

go 1.22
