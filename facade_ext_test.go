package beesim

import (
	"testing"
	"time"
)

func TestServiceCatalogFacade(t *testing.T) {
	for _, k := range []ServiceKind{
		QueenDetectionService, PollenDetectionService,
		BeeCountingService, SwarmPredictionService,
	} {
		p, err := ServiceCatalog(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.EdgeFLOPs <= 0 {
			t.Fatalf("%v: empty profile", k)
		}
	}
}

func TestPlanServicesFacade(t *testing.T) {
	plan, err := PlanServices(ServiceBundle{
		Kinds:  []ServiceKind{QueenDetectionService, BeeCountingService},
		Period: 30 * time.Minute,
	}, 2000, DefaultServer(35), Losses{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(plan.Decisions))
	}
	if plan.TotalPerClient() <= 0 {
		t.Fatal("plan has no cost")
	}
}

func TestAdaptiveFacade(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Days = 1
	res, err := SimulatePolicy(cfg, ThresholdPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Routines == 0 {
		t.Fatal("no routines")
	}
	if _, err := SimulatePolicy(cfg, ForecastPolicy()); err != nil {
		t.Fatal(err)
	}
}

func TestSurrogateFacade(t *testing.T) {
	svc, err := NewService(CNN, DefaultPeriod)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSurrogateConfig(svc)
	cfg.Samples = 100
	s, err := FitSurrogate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.TrainR2 < 0.9 {
		t.Fatalf("surrogate R2 = %v", s.TrainR2)
	}
}

func TestSwarmFacade(t *testing.T) {
	cfg := DefaultAudioConfig()
	cfg.Seconds = 1
	corpus, err := SynthesizeCorpus(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	score, err := PipingScore(corpus[0].Samples, AudioSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 || score > 1 {
		t.Fatalf("score = %v", score)
	}
	p, err := NewSwarmPredictor()
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(SwarmObservation{Time: time.Now(), Piping: score, Activity: 0.5})
}

func TestVisionFacade(t *testing.T) {
	scene, err := SynthesizeEntranceImage(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := CountBees(scene.Image)
	if n < 4 || n > 8 {
		t.Fatalf("counted %d bees, truth 6", n)
	}
	_ = DetectPollen(scene.Image)
}

func TestNetworkedFacade(t *testing.T) {
	server, err := NewCloudServer("127.0.0.1:0", DefaultCloudServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve() //nolint:errcheck
	defer server.Close()
	agent, err := DialCloud(server.Addr(), DefaultEdgeAgentConfig("facade-1"))
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if agent.Slot() < 0 {
		t.Fatal("no slot assigned")
	}
	var _ *Archive = server.Archive()
}

func TestExtensionExperimentsFacade(t *testing.T) {
	if _, err := Apiary(1, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := Seasonal(Cachan, 1, time.Hour); err != nil {
		t.Fatal(err)
	}
	if Lyon.Name != "Lyon" {
		t.Fatal("site export broken")
	}
}
