package beesim

// Trace determinism: span IDs are pure hashes of (seed, hive, wake-up,
// attempt), so a faulted multi-hive campaign must stitch to the same
// trace bytes, the same exemplar sets, and the same critical-path
// report at every worker count. This is the tentpole contract of the
// tracing layer — anything time- or schedule-dependent in ID derivation
// or exemplar retention shows up here as a byte diff.

import (
	"bytes"
	"testing"

	"beesim/internal/deployment"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/report"
	"beesim/internal/rng"
)

const traceCampaignHives = 3

// renderTraceCampaign runs a faulted three-hive deployment day with
// per-hive tracers and registries, then flattens every traced
// observable — stitched Chrome trace JSON, merged metrics snapshot
// (exemplars included), and the hivereport-trace critical-path report —
// into one byte slice.
func renderTraceCampaign(t *testing.T, workers int) []byte {
	t.Helper()
	plan := chaosPlan()
	type hiveRun struct {
		events []obs.TraceEvent
		m      *obs.Registry
	}
	runs, err := parallel.Map(workers, traceCampaignHives, func(i int) (hiveRun, error) {
		cfg := deployment.DefaultConfig()
		cfg.Days = 1
		cfg.Faults = &plan
		cfg.Seed = rng.StreamSeed(99, uint64(i))
		cfg.HiveID = []string{"hive-a", "hive-b", "hive-c"}[i]
		cfg.Metrics = obs.NewRegistry()
		cfg.Ledger = ledger.New()
		cfg.Tracer = obs.NewTracer(cfg.Start)
		if _, err := deployment.Run(cfg); err != nil {
			return hiveRun{}, err
		}
		return hiveRun{cfg.Tracer.Events(), cfg.Metrics}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	lists := make([][]obs.TraceEvent, len(runs))
	merged := obs.NewRegistry()
	for i, r := range runs {
		lists[i] = r.events
		merged.Merge(r.m)
	}
	stitched := obs.Stitch(lists...)

	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, stitched); err != nil {
		t.Fatal(err)
	}
	snap := maskWorkers(merged.Snapshot())
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sums := obs.AnalyzeTraces(stitched)
	if len(sums) == 0 {
		t.Fatal("faulted campaign produced no traced uploads")
	}
	if err := report.WriteTraceReport(&buf, sums, 5, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceCampaignDeterministicAcrossWorkers is the tracing layer's
// worker-count contract: trace JSON, exemplars and the critical-path
// report are byte-identical at workers 1, 2 and 8.
func TestTraceCampaignDeterministicAcrossWorkers(t *testing.T) {
	want := renderTraceCampaign(t, determinismWorkers[0])
	if len(want) == 0 {
		t.Fatal("empty render")
	}
	for _, w := range determinismWorkers[1:] {
		if got := renderTraceCampaign(t, w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d traced campaign diverged from workers=1 (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}

// TestTraceCampaignCriticalPathCoverage pins the analyzer's acceptance
// bar on real simulation output: every traced wake-up in a faulted
// deployment day attributes at least 95 % of its end-to-end latency to
// named segments, and retried uploads carry per-attempt spans that
// share the root's trace ID.
func TestTraceCampaignCriticalPathCoverage(t *testing.T) {
	plan := chaosPlan()
	cfg := deployment.DefaultConfig()
	cfg.Days = 1
	cfg.Faults = &plan
	cfg.Metrics = obs.NewRegistry()
	cfg.Tracer = obs.NewTracer(cfg.Start)
	if _, err := deployment.Run(cfg); err != nil {
		t.Fatal(err)
	}
	sums := obs.AnalyzeTraces(cfg.Tracer.Events())
	if len(sums) == 0 {
		t.Fatal("no traced wake-ups")
	}
	var retried bool
	for _, s := range sums {
		if s.RootName != "wake-up routine" {
			t.Fatalf("trace %s root = %q, want the deployment wake-up span", s.TraceID, s.RootName)
		}
		if cov := s.Coverage(); cov < 0.95 {
			t.Errorf("trace %s attributes only %.1f%% of its %.1f ms",
				s.TraceID, 100*cov, float64(s.TotalUS)/1e3)
		}
		if s.Segment("uplink retry") > 0 {
			retried = true
			if s.Segment("uplink backoff") == 0 {
				t.Errorf("trace %s has retry spans but no backoff span", s.TraceID)
			}
		}
	}
	if !retried {
		t.Error("chaos plan produced no retried upload; attempt spans untested")
	}

	// Exemplars in the registry resolve to analyzed traces.
	byID := make(map[string]bool, len(sums))
	for _, s := range sums {
		byID[s.TraceID] = true
	}
	snap := cfg.Metrics.Snapshot()
	var exemplars int
	for _, h := range snap.Histograms {
		for _, e := range h.Exemplars {
			exemplars++
			if !byID[e.TraceID] {
				t.Errorf("histogram %s exemplar points at unknown trace %s", h.Name, e.TraceID)
			}
		}
	}
	if exemplars == 0 {
		t.Error("instrumented faulted run kept no exemplars")
	}

	// Wake-up roots are distinct traces with stable IDs: re-deriving the
	// first root from (seed, hive, index) reproduces its ID. The default
	// hive label is the location name.
	sc := obs.NewRootSpan(cfg.Seed, cfg.Location.Name, 0)
	if !byID[sc.TraceHex()] {
		t.Errorf("wake-up 0 trace %s not among analyzed traces", sc.TraceHex())
	}
}
