// Quickstart: build the two service-placement scenarios of the paper for
// a single smart beehive, print their per-cycle energy, and ask the
// library where a fleet should run its queen-detection service.
package main

import (
	"fmt"
	"log"
	"time"

	"beesim"
)

func main() {
	// A queen-detection service profile (CNN variant) over the paper's
	// 5-minute wake-up cycle, calibrated from the deployed hardware.
	svc, err := beesim.NewService(beesim.CNN, beesim.DefaultPeriod)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("service: %s\n", svc.Name)
	fmt.Printf("  edge scenario:        %.1f J per cycle at the hive\n", float64(svc.EdgeOnlyCycle))
	fmt.Printf("  edge+cloud scenario:  %.1f J per cycle at the hive (+ cloud)\n\n", float64(svc.EdgeCloudCycle))

	// Where should the service run for different apiary sizes?
	server := beesim.DefaultServer(35) // 35 hives may upload in parallel
	for _, hives := range []int{5, 100, 500, 1000} {
		rec, err := beesim.Recommend(hives, server, svc, beesim.Losses{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d hives -> run the model %-10v (edge %.1f vs edge+cloud %.1f J/hive/cycle, %d server(s))\n",
			hives, rec.Placement,
			float64(rec.EdgeOnlyPerClient), float64(rec.EdgeCloudPerClient), rec.Servers)
	}

	// The average power of one hive at different wake-up periods (Fig 3).
	fmt.Println("\naverage hive power by wake-up period:")
	for _, minutes := range []int{5, 10, 30, 120} {
		p := beesim.AveragePower(time.Duration(minutes) * time.Minute)
		fmt.Printf("  every %3d min: %v\n", minutes, p)
	}
}
