// Queendetection: run the paper's Section-V service end to end —
// synthesize labeled hive audio, train both classifiers on it, then
// stream fresh clips from a simulated colony that loses its queen midway
// and watch the detector raise the alarm, with the edge energy budget of
// every prediction.
package main

import (
	"fmt"
	"log"

	"beesim"
	"beesim/internal/audio"
	"beesim/internal/hive"
)

func main() {
	// 1. Train on a synthetic corpus (the paper uses 1647 real clips;
	//    short clips keep this example quick).
	cfg := beesim.DefaultAudioConfig()
	cfg.Seconds = 2
	corpus, err := beesim.SynthesizeCorpus(cfg, 160)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training corpus: %d clips of %.0f s\n\n", len(corpus), cfg.Seconds)

	svmDet, err := beesim.TrainSVMDetector(corpus, beesim.AudioSampleRate, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SVM:  accuracy %.1f%%, %d support vectors, %v per edge prediction\n",
		100*svmDet.Metrics.Accuracy, svmDet.Model.NumSupportVectors(), svmDet.EdgeEnergy)

	opts := beesim.DefaultCNNOptions()
	opts.Size = 32 // small input for a fast example; the paper's optimum is 100
	opts.Train.Epochs = 6
	opts.Train.LR = 0.01
	cnnDet, err := beesim.TrainCNNDetector(corpus, beesim.AudioSampleRate, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CNN:  accuracy %.1f%%, %.1f MFLOPs, %v per edge prediction\n\n",
		100*cnnDet.Metrics.Accuracy, cnnDet.FLOPs/1e6, cnnDet.EdgeEnergy)

	// 2. Monitor a colony that loses its queen after the 6th cycle.
	synth, err := audio.NewSynth(audio.Config{
		SampleRate: beesim.AudioSampleRate, Seconds: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitoring (10-minute cycles):")
	alarms := 0
	for cycle := 1; cycle <= 12; cycle++ {
		state := hive.QueenPresent
		if cycle > 6 {
			state = hive.QueenLost
		}
		clip := synth.Clip(state, 0.7)
		queen, err := svmDet.Predict(clip, beesim.AudioSampleRate)
		if err != nil {
			log.Fatal(err)
		}
		status := "queen present"
		if !queen {
			status = "QUEENLESS — alert the beekeeper"
			alarms++
		}
		truth := "queen"
		if state == hive.QueenLost {
			truth = "lost"
		}
		fmt.Printf("  cycle %2d  [truth: %-5s]  detector: %s\n", cycle, truth, status)
	}
	fmt.Printf("\n%d alarms raised after the queen loss at cycle 7\n", alarms)
}
