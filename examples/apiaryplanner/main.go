// Apiaryplanner: capacity-plan a cooperative of beekeepers pooling their
// smart beehives behind shared cloud servers.
//
// Given a target fleet size, the planner sweeps slot capacities and loss
// assumptions, reports how many servers each configuration needs, which
// placement wins, and how sensitive the decision is to the paper's three
// loss models.
package main

import (
	"fmt"
	"log"
	"os"

	"beesim"
	"beesim/internal/report"
)

func main() {
	const fleet = 800 // smart beehives across the cooperative

	svc, err := beesim.NewService(beesim.CNN, beesim.DefaultPeriod)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planning for %d smart beehives running %s\n\n", fleet, svc.Name)

	// 1. How does the slot capacity of the shared servers change the
	//    picture? (The paper's tipping point is 26 clients per slot.)
	capTable := report.NewTable("placement by server slot capacity (no losses)",
		"Slot capacity", "Edge J/hive", "Edge+cloud J/hive", "Servers", "Recommended")
	for _, maxPar := range []int{10, 20, 26, 35, 50} {
		rec, err := beesim.Recommend(fleet, beesim.DefaultServer(maxPar), svc, beesim.Losses{})
		if err != nil {
			log.Fatal(err)
		}
		capTable.MustAddRow(
			fmt.Sprintf("%d", maxPar),
			fmt.Sprintf("%.1f", float64(rec.EdgeOnlyPerClient)),
			fmt.Sprintf("%.1f", float64(rec.EdgeCloudPerClient)),
			fmt.Sprintf("%d", rec.Servers),
			rec.Placement.String())
	}
	if err := capTable.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Stress the winning configuration with the paper's loss models.
	fmt.Println()
	lossTable := report.NewTable("sensitivity to losses (slot capacity 35)",
		"Losses", "Edge J/hive", "Edge+cloud J/hive", "Recommended", "Margin (J)")
	cases := []struct {
		name    string
		a, b, c bool
	}{
		{"none", false, false, false},
		{"A: slot saturation", true, false, false},
		{"B: transfer penalty", false, true, false},
		{"C: client loss", false, false, true},
		{"A+B+C", true, true, true},
	}
	for _, tc := range cases {
		rec, err := beesim.Recommend(fleet, beesim.DefaultServer(35), svc,
			beesim.PaperLosses(tc.a, tc.b, tc.c))
		if err != nil {
			log.Fatal(err)
		}
		lossTable.MustAddRow(
			tc.name,
			fmt.Sprintf("%.1f", float64(rec.EdgeOnlyPerClient)),
			fmt.Sprintf("%.1f", float64(rec.EdgeCloudPerClient)),
			rec.Placement.String(),
			fmt.Sprintf("%.1f", float64(rec.Margin())))
	}
	if err := lossTable.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 3. Show the chosen allocation: servers, slots, fill levels.
	alloc, err := beesim.Allocate(fleet, beesim.DefaultServer(35), svc,
		beesim.Losses{}, beesim.FillSequential)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocation at capacity 35: %d server(s)\n", alloc.NumServers())
	for i, srv := range alloc.Servers {
		full, used := 0, 0
		for _, n := range srv.Slots {
			if n > 0 {
				used++
			}
			if n == 35 {
				full++
			}
		}
		fmt.Printf("  server %d: %d hives in %d/%d slots (%d full)\n",
			i+1, srv.Clients(), used, len(srv.Slots), full)
	}
}
