// Solarsizing: use the deployed-hive simulator to choose a wake-up
// period the energy budget can sustain, and to see what fixing the
// paper's night brownout (a protected battery bus) would buy.
//
// The paper's deployment browns out after sunset; this example contrasts
// the observed behaviour with a corrected power path, across wake-up
// periods, over a simulated week in Cachan.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"beesim"
	"beesim/internal/report"
)

func main() {
	table := report.NewTable(
		"one simulated week in Cachan, by wake-up period and power-path design",
		"Wake period", "Bus design", "Routines done", "Missed", "Recorder energy", "Harvest used")

	for _, period := range []time.Duration{5 * time.Minute, 10 * time.Minute, 30 * time.Minute} {
		for _, brownout := range []bool{true, false} {
			cfg := beesim.DefaultTraceConfig()
			cfg.WakePeriod = period
			cfg.NightBrownout = brownout
			tr, err := beesim.RunTrace(cfg)
			if err != nil {
				log.Fatal(err)
			}
			design := "deployed (night brownout)"
			if !brownout {
				design = "protected battery bus"
			}
			consumed := float64(tr.RecorderEnergy + tr.MonitorEnergy)
			usedPct := 100 * consumed / float64(tr.HarvestedEnergy)
			table.MustAddRow(
				period.String(),
				design,
				fmt.Sprintf("%d", tr.Wakeups),
				fmt.Sprintf("%d", tr.MissedWakeups),
				tr.RecorderEnergy.String(),
				fmt.Sprintf("%.0f%%", usedPct))
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println(`
reading the table:
  - the deployed design loses every night's cycles (the paper's Fig 2a gaps);
  - a protected bus recovers them at a modest extra energy cost;
  - longer wake periods cut recorder energy roughly linearly (Fig 3's
    convergence to the sleep floor), at the price of coarser data.`)
}
