// Adaptivehive: the paper's future work in action — a smart beehive that
// tunes its own wake-up period and service placement from the battery
// and a solar forecast, compared against fixed schedules through a
// simulated week; plus the swarm-prediction service watching the same
// colony's sound for queen piping.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"beesim/internal/adaptive"
	"beesim/internal/audio"
	"beesim/internal/experiments"
	"beesim/internal/hive"
	"beesim/internal/report"
	"beesim/internal/swarm"
)

func main() {
	// 1. Policy study: fixed schedules vs the two controllers, identical
	//    April weather, protected power path.
	cfg := adaptive.DefaultConfig()
	results, err := experiments.PolicyComparison(cfg)
	if err != nil {
		log.Fatal(err)
	}
	table := report.NewTable(
		fmt.Sprintf("one simulated week (%s), half-charged battery", cfg.Location.Name),
		"Policy", "Routines", "Missed", "Cloud cycles", "Energy", "Min SoC", "J/routine")
	for _, r := range results {
		perRoutine := 0.0
		if r.Routines > 0 {
			perRoutine = float64(r.EdgeEnergy) / float64(r.Routines)
		}
		table.MustAddRow(
			r.Policy,
			fmt.Sprintf("%d", r.Routines),
			fmt.Sprintf("%d", r.MissedRoutines),
			fmt.Sprintf("%d", r.CloudCycles),
			r.EdgeEnergy.String(),
			fmt.Sprintf("%.0f%%", 100*r.MinSoC),
			fmt.Sprintf("%.0f", perRoutine))
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`
the controllers ride the solar surplus: fast cadence on sunny days,
backing off (and offloading inference to the cloud) as the battery
drains — the behaviour the paper's future-work section asks for.`)

	// 2. The swarm-prediction service on the same hive: the colony's
	//    queen starts piping midway through the week.
	fmt.Println("swarm watch (6-hour observations):")
	synth, err := audio.NewSynth(audio.Config{
		SampleRate: audio.SampleRate, Seconds: 3, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	predictor, err := swarm.NewPredictor(swarm.DefaultPredictor())
	if err != nil {
		log.Fatal(err)
	}
	t0 := cfg.Start
	for i := 0; i < 28; i++ {
		state := hive.QueenPresent
		activity := 0.7
		if i >= 14 { // piping begins on day 3.5
			state = hive.QueenPiping
			activity = 0.3
		}
		clip := synth.Clip(state, activity)
		score, err := swarm.PipingScore(clip, audio.SampleRate)
		if err != nil {
			log.Fatal(err)
		}
		risk := predictor.Observe(swarm.Observation{
			Time:     t0.Add(time.Duration(i) * 6 * time.Hour),
			Piping:   score,
			Activity: activity,
		})
		if i%4 == 3 || predictor.Alarm() {
			marker := ""
			if predictor.Alarm() {
				marker = "  << SWARM ALARM: inspect the hive"
			}
			fmt.Printf("  day %.1f: piping %.2f, risk %.2f%s\n",
				float64(i)/4, score, risk, marker)
			if predictor.Alarm() {
				break
			}
		}
	}
}
