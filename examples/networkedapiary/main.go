// Networkedapiary: the paper's architecture as running software. Boots
// the cloud queen-detection service in-process, connects an apiary of
// edge agents over real TCP (loopback), runs a few synchronized cycles
// in both placements, and prints the resulting energy ledgers side by
// side — the same comparison as Tables I/II, but measured from live
// message flow instead of assembled from constants.
package main

import (
	"fmt"
	"log"
	"time"

	"beesim/internal/hive"
	"beesim/internal/hivenet"
	"beesim/internal/routine"
)

func main() {
	cfg := hivenet.DefaultServerConfig()
	cfg.MaxParallel = 5
	cfg.Slots = 4
	server, err := hivenet.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := server.Serve(); err != nil {
			log.Fatal(err)
		}
	}()
	defer server.Close()
	fmt.Printf("cloud service on %s (detector accuracy %.1f%%)\n\n",
		server.Addr(), 100*server.DetectorAccuracy())

	// An apiary of six hives: half keep the model at the edge, half
	// offload to the cloud.
	type hiveAgent struct {
		agent *hivenet.Agent
		name  string
		mode  routine.Placement
	}
	var apiary []hiveAgent
	for i := 0; i < 6; i++ {
		mode := routine.EdgeOnly
		if i%2 == 1 {
			mode = routine.EdgeCloud
		}
		name := fmt.Sprintf("hive-%d", i+1)
		acfg := hivenet.DefaultAgentConfig(name)
		acfg.Placement = mode
		acfg.Seed = uint64(10 + i)
		a, err := hivenet.Dial(server.Addr(), acfg)
		if err != nil {
			log.Fatal(err)
		}
		defer a.Close()
		apiary = append(apiary, hiveAgent{agent: a, name: name, mode: mode})
		fmt.Printf("%s joined (placement %v, time slot %d)\n", name, mode, a.Slot())
	}

	// Three cycles; hive-3 loses its queen on the second.
	fmt.Println("\nrunning 3 cycles:")
	now := time.Date(2023, 4, 20, 9, 0, 0, 0, time.UTC)
	for cycle := 1; cycle <= 3; cycle++ {
		for _, h := range apiary {
			truth := hive.QueenPresent
			if h.name == "hive-3" && cycle >= 2 {
				truth = hive.QueenLost
			}
			res, err := h.agent.RunCycle(truth, 0.7, now)
			if err != nil {
				log.Fatal(err)
			}
			if !res.QueenPresent {
				fmt.Printf("  cycle %d: %s reports QUEENLESS (computed at %s)\n",
					cycle, h.name, res.ComputedAt)
			}
		}
		now = now.Add(5 * time.Minute)
	}

	// The ledgers: what each placement spent at the hive.
	fmt.Println("\nedge energy per hive (3 cycles of active tasks):")
	var edgeTotal, cloudTotal float64
	for _, h := range apiary {
		fmt.Printf("  %-7s %-10v %v\n", h.name, h.mode, h.agent.EdgeEnergy())
		if h.mode == routine.EdgeOnly {
			edgeTotal += float64(h.agent.EdgeEnergy())
		} else {
			cloudTotal += float64(h.agent.EdgeEnergy())
		}
	}
	fmt.Printf("\nmean per hive: edge placement %.1f J, edge+cloud placement %.1f J (%.1f%% saved at the hive)\n",
		edgeTotal/3, cloudTotal/3, 100*(1-cloudTotal/edgeTotal))

	st := server.Stats()
	fmt.Printf("server: %d sessions, %d uploads, burst energy %v above idle\n",
		st.Sessions, st.Uploads, st.BurstEnergy)
}
