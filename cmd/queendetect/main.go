// Command queendetect trains and evaluates the queen-detection service
// of Section V on a synthetic corpus, and regenerates Figure 5's
// accuracy/energy-vs-input-size sweep.
//
// Usage:
//
//	queendetect train [-corpus 200] [-clip 2] [-model svm|cnn|both]
//	queendetect fig5  [-corpus 120] [-epochs 6] [-sizes 20,40,...,160] [-csv out.csv]
//	queendetect synth -out clip.wav [-state present|lost|piping]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"beesim/internal/audio"
	"beesim/internal/experiments"
	"beesim/internal/hive"
	"beesim/internal/queendetect"
	"beesim/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = train(os.Args[2:])
	case "fig5":
		err = fig5(os.Args[2:])
	case "synth":
		err = synth(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "queendetect: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "queendetect:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: queendetect <train|fig5|synth> [flags]`)
}

func corpusFor(n int, clipSeconds float64, seed uint64) ([]audio.LabeledClip, error) {
	return audio.Corpus(audio.Config{
		SampleRate: audio.SampleRate,
		Seconds:    clipSeconds,
		Seed:       seed,
	}, n)
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	n := fs.Int("corpus", 200, "corpus size (the paper uses 1647)")
	clip := fs.Float64("clip", 2, "clip length in seconds (paper: 10)")
	model := fs.String("model", "both", "svm, cnn or both")
	size := fs.Int("size", 100, "CNN input size (paper optimum: 100)")
	epochs := fs.Int("epochs", 6, "CNN training epochs (paper: 4)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus, err := corpusFor(*n, *clip, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d clips of %.0f s at %d Hz\n\n", *n, *clip, audio.SampleRate)

	if *model == "svm" || *model == "both" {
		res, err := queendetect.TrainSVM(corpus, audio.SampleRate, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("SVM (RBF, C=20):\n")
		fmt.Printf("  accuracy %.1f%%  precision %.1f%%  recall %.1f%%  F1 %.1f%%\n",
			100*res.Metrics.Accuracy, 100*res.Metrics.Precision,
			100*res.Metrics.Recall, 100*res.Metrics.F1)
		fmt.Printf("  support vectors: %d\n", res.Model.NumSupportVectors())
		fmt.Printf("  edge inference: %v in %v\n\n", res.EdgeEnergy, res.EdgeDuration.Round(0))
	}
	if *model == "cnn" || *model == "both" {
		opts := queendetect.DefaultCNNOptions()
		opts.Size = *size
		opts.Seed = *seed
		opts.Train.Epochs = *epochs
		opts.Train.LR = 0.01
		res, err := queendetect.TrainCNN(corpus, audio.SampleRate, opts)
		if err != nil {
			return err
		}
		fmt.Printf("CNN (%dx%d input, %d epochs):\n", *size, *size, *epochs)
		fmt.Printf("  accuracy %.1f%%  precision %.1f%%  recall %.1f%%  F1 %.1f%%\n",
			100*res.Metrics.Accuracy, 100*res.Metrics.Precision,
			100*res.Metrics.Recall, 100*res.Metrics.F1)
		fmt.Printf("  forward pass: %.1f MFLOPs\n", res.FLOPs/1e6)
		fmt.Printf("  edge inference: %v in %v\n", res.EdgeEnergy, res.EdgeDuration.Round(0))
	}
	return nil
}

func fig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	n := fs.Int("corpus", 120, "corpus size")
	epochs := fs.Int("epochs", 6, "CNN training epochs")
	sizesFlag := fs.String("sizes", "20,40,60,80,100,120,140,160", "comma-separated input sizes")
	csvPath := fs.String("csv", "", "write the series to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sizes []int
	for _, tok := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", tok, err)
		}
		sizes = append(sizes, v)
	}
	cfg := experiments.DefaultFigure5()
	cfg.Sizes = sizes
	cfg.CorpusSize = *n
	cfg.Epochs = *epochs
	fmt.Printf("Figure 5 sweep: sizes %v, corpus %d (training %d CNNs; this takes a while)\n\n",
		sizes, *n, len(sizes))
	pts, err := experiments.Figure5(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 5: accuracy and edge inference energy vs input size",
		"Input", "Accuracy", "Edge energy (J)", "Edge time (s)", "MFLOPs")
	for _, p := range pts {
		t.MustAddRow(
			fmt.Sprintf("%dx%d", p.Size, p.Size),
			fmt.Sprintf("%.1f%%", 100*p.Accuracy),
			fmt.Sprintf("%.1f", float64(p.EdgeEnergy)),
			fmt.Sprintf("%.1f", p.EdgeSeconds),
			fmt.Sprintf("%.1f", p.FLOPs/1e6))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	acc, energy, err := experiments.Figure5Series(pts)
	if err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteSeriesCSV(f, "input size", acc, energy); err != nil {
			return err
		}
		fmt.Printf("\nseries written to %s\n", *csvPath)
	}
	return nil
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	out := fs.String("out", "", "output WAV path (required)")
	state := fs.String("state", "present", "queen state: present, lost or piping")
	seconds := fs.Float64("seconds", 10, "clip length")
	activity := fs.Float64("activity", 0.7, "colony activity in [0,1]")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	var q hive.QueenState
	switch *state {
	case "present":
		q = hive.QueenPresent
	case "lost":
		q = hive.QueenLost
	case "piping":
		q = hive.QueenPiping
	default:
		return fmt.Errorf("unknown state %q", *state)
	}
	s, err := audio.NewSynth(audio.Config{
		SampleRate: audio.SampleRate, Seconds: *seconds, Seed: *seed})
	if err != nil {
		return err
	}
	clip := s.Clip(q, *activity)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := audio.WriteWAV(f, clip, audio.SampleRate); err != nil {
		return err
	}
	fmt.Printf("wrote %.0f s of %s hive sound to %s\n", *seconds, q, *out)
	return nil
}
