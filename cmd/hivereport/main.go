// Command hivereport reads energy ledger JSONL files (written by
// hivetrace -ledger, apiarysim scenario/sweep -ledger, or fetched from
// the cloud dashboard's /api/ledger) and reports where the joules went:
//
//	hivereport run.jsonl                 per-hive breakdown + conservation audit
//	hivereport -hive apiary-1 run.jsonl  limit tables to one hive
//	hivereport -csv out.csv run.jsonl    breakdown as CSV
//	hivereport -diff edge.jsonl edgecloud.jsonl
//	                                     two-run comparison, largest energy
//	                                     movement first (the paper's Section V
//	                                     edge vs edge+cloud question)
//
// The breakdown tables mirror the shape of the paper's Tables I/II: one
// row per (device, component, task, direction), with total joules, the
// covered duration, and the entry count.
//
// The slo subcommand evaluates a declarative SLO spec offline against
// a metrics snapshot (JSON from /api/metrics or obs.Snapshot) and/or a
// ledger file, and exits nonzero on breach:
//
//	hivereport slo -spec examples/slo_upload.json -metrics snap.json
//	hivereport slo -spec hive.json -ledger run.jsonl -window 48h
//
// The trace subcommand runs the critical-path analyzer over Chrome
// trace JSON files: slowest uploads, per-segment latency decomposition,
// and exemplar cross-reference (see trace.go):
//
//	hivereport trace -top 10 -metrics snap.json run.trace.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/report"
	"beesim/internal/slo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hivereport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// Subcommand dispatch before flag parsing keeps the original
	// flags-only invocations (`hivereport -diff a b`) working unchanged.
	if len(args) > 0 && args[0] == "slo" {
		return runSLO(args[1:], out)
	}
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:], out)
	}
	fs := flag.NewFlagSet("hivereport", flag.ContinueOnError)
	diff := fs.Bool("diff", false, "compare two ledger files (A B): where did the joules move?")
	hive := fs.String("hive", "", "limit breakdown tables to one hive id")
	csvPath := fs.String("csv", "", "also write the breakdown as CSV to this file")
	tolAbs := fs.Float64("tol-abs", ledger.DefaultTolerance().AbsJ,
		"conservation audit absolute tolerance in joules")
	tolRel := fs.Float64("tol-rel", ledger.DefaultTolerance().Rel,
		"conservation audit relative tolerance (fraction of gross flow)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hivereport [flags] ledger.jsonl")
		fmt.Fprintln(fs.Output(), "       hivereport -diff [flags] a.jsonl b.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			fs.Usage()
			return errors.New("-diff needs exactly two ledger files")
		}
		a, err := loadLedger(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := loadLedger(fs.Arg(1))
		if err != nil {
			return err
		}
		return printDiff(out, fs.Arg(0), fs.Arg(1), a, b)
	}

	if fs.NArg() != 1 {
		fs.Usage()
		return errors.New("need exactly one ledger file")
	}
	lg, err := loadLedger(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := printBreakdown(out, lg, *hive); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, ledger.Breakdown(lg.Entries(), *hive)); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n\n", *csvPath)
	}
	return printAudit(out, lg, ledger.Tolerance{AbsJ: *tolAbs, Rel: *tolRel})
}

// runSLO is the offline SLO gate: spec + snapshot and/or ledger in, a
// pass/fail report out, nonzero exit on breach so it can sit directly
// in a CI pipeline after a simulation run.
func runSLO(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hivereport slo", flag.ContinueOnError)
	specPath := fs.String("spec", "", "SLO spec JSON file (required)")
	metricsPath := fs.String("metrics", "", "metrics snapshot JSON (from /api/metrics or obs.Snapshot)")
	ledgerPath := fs.String("ledger", "", "energy ledger JSONL file (for energy objectives)")
	window := fs.Duration("window", 0, "virtual-time window the run covered (needed by budget_wh_per_day)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hivereport slo -spec spec.json [-metrics snap.json] [-ledger run.jsonl] [-window 48h] [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		fs.Usage()
		return errors.New("slo needs -spec spec.json")
	}
	if *metricsPath == "" && *ledgerPath == "" {
		fs.Usage()
		return errors.New("slo needs -metrics and/or -ledger to evaluate against")
	}
	spec, err := slo.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	in := slo.Input{Window: *window}
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			return err
		}
		if in.Snapshot, err = obs.ParseSnapshot(data); err != nil {
			return fmt.Errorf("%s: %w", *metricsPath, err)
		}
	}
	if *ledgerPath != "" {
		lg, err := loadLedger(*ledgerPath)
		if err != nil {
			return err
		}
		in.Entries = lg.Entries()
	}
	rep, err := slo.Evaluate(spec, in)
	if err != nil {
		return err
	}
	if *asJSON {
		err = rep.WriteJSON(out)
	} else {
		err = rep.WriteText(out)
	}
	if err != nil {
		return err
	}
	if !rep.Pass() {
		return fmt.Errorf("SLO %q breached: %d of %d objectives failing",
			spec.Name, rep.Breaches(), len(rep.Results))
	}
	return nil
}

func loadLedger(path string) (lg *ledger.Ledger, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	lg, err = ledger.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lg, nil
}

// printBreakdown renders one table per hive (or one table for the
// selected hive) in the Tables I/II shape.
func printBreakdown(out io.Writer, lg *ledger.Ledger, hive string) error {
	entries := lg.Entries()
	hives := ledger.Hives(entries)
	if hive != "" {
		hives = []string{hive}
	}
	for _, h := range hives {
		rows := ledger.Breakdown(entries, h)
		name := h
		if name == "" {
			name = "(fleet)"
		}
		tbl := report.NewTable(fmt.Sprintf("Energy breakdown — hive %s", name),
			"device", "component", "task", "dir", "energy (J)", "time (s)", "entries")
		var totalJ float64
		for _, r := range rows {
			tbl.MustAddRow(r.Device, r.Component, r.Task, r.Dir.String(),
				fmt.Sprintf("%.3f", r.Joules),
				fmt.Sprintf("%.1f", r.Seconds),
				fmt.Sprintf("%d", r.Count))
			if r.Dir == ledger.Consume {
				totalJ += r.Joules
			}
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "total consumed: %.3f J\n\n", totalJ); err != nil {
			return err
		}
	}
	if len(hives) == 0 {
		if _, err := fmt.Fprintln(out, "ledger is empty"); err != nil {
			return err
		}
	}
	return nil
}

func printAudit(out io.Writer, lg *ledger.Ledger, tol ledger.Tolerance) error {
	rep := ledger.Audit(lg, tol)
	if _, err := fmt.Fprintln(out, rep.String()); err != nil {
		return err
	}
	if rep.OK() {
		return nil
	}
	for _, v := range rep.Violations {
		if _, err := fmt.Fprintln(out, " ", v.String()); err != nil {
			return err
		}
	}
	return fmt.Errorf("conservation audit failed with %d violation(s)", len(rep.Violations))
}

func printDiff(out io.Writer, nameA, nameB string, a, b *ledger.Ledger) error {
	rows := ledger.Diff(a.Entries(), b.Entries())
	tbl := report.NewTable(fmt.Sprintf("Run diff — A=%s  B=%s", nameA, nameB),
		"device", "component", "task", "dir", "A (J)", "B (J)", "Δ (J)")
	var totalA, totalB float64
	for _, r := range rows {
		tbl.MustAddRow(r.Device, r.Component, r.Task, r.Dir.String(),
			fmt.Sprintf("%.3f", r.AJ),
			fmt.Sprintf("%.3f", r.BJ),
			fmt.Sprintf("%+.3f", r.DeltaJ))
		if r.Dir == ledger.Consume {
			totalA += r.AJ
			totalB += r.BJ
		}
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out,
		"total consumed: A %.3f J, B %.3f J, Δ %+.3f J (%+.1f%%)\n",
		totalA, totalB, totalB-totalA, percentChange(totalA, totalB))
	return err
}

func percentChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}

func writeCSV(path string, rows []ledger.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	return report.WriteLedgerCSV(f, rows)
}
