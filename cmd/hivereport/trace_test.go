package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beesim/internal/obs"
)

func writeTraceFile(t *testing.T, name string, hives int) (string, string) {
	t.Helper()
	tr := obs.NewTracer(t0)
	m := obs.NewRegistry()
	h := m.Histogram("upload_seconds")
	for i := 0; i < hives; i++ {
		sc := obs.NewRootSpan(11, "cli-hive", uint64(i))
		at := t0.Add(time.Duration(i) * time.Minute)
		total := time.Duration(3+i) * time.Second
		tr.SpanCtx(sc.Child("compute", 0), "compute", "edge", obs.TidRoutine,
			at, time.Second, nil)
		tr.SpanCtx(sc.Child("upload", 0), "uplink transfer", "net", obs.TidNetwork,
			at.Add(time.Second), total-time.Second, nil)
		tr.SpanCtx(sc, "wake-up cycle", "edge", obs.TidRoutine, at, total, nil)
		h.ObserveExemplar(total.Seconds(), sc)
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, name)
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snap.json")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot().WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	return tracePath, snapPath
}

func TestRunTraceText(t *testing.T) {
	tracePath, snapPath := writeTraceFile(t, "run.trace.json", 3)
	var out bytes.Buffer
	if err := run([]string{"trace", "-top", "2", "-metrics", snapPath, tracePath}, &out); err != nil {
		t.Fatalf("trace: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"traces: 3", "Slowest uploads (top 2)",
		"Latency decomposition by segment", "uplink transfer",
		"Histogram exemplars", "upload_seconds",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTraceJSON(t *testing.T) {
	tracePath, _ := writeTraceFile(t, "run.trace.json", 2)
	var out bytes.Buffer
	if err := run([]string{"trace", "-json", tracePath}, &out); err != nil {
		t.Fatalf("trace -json: %v\n%s", err, out.String())
	}
	var rep struct {
		Traces   []obs.TraceSummary `json:"traces"`
		Segments []obs.SegmentStats `json:"segments"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Traces) != 2 || len(rep.Segments) != 2 {
		t.Fatalf("got %d traces, %d segments; want 2, 2", len(rep.Traces), len(rep.Segments))
	}
	for _, s := range rep.Traces {
		if s.Coverage() < 0.99 {
			t.Errorf("trace %s coverage %.2f < 0.99", s.TraceID, s.Coverage())
		}
	}
}

func TestRunTraceErrors(t *testing.T) {
	if err := run([]string{"trace"}, &bytes.Buffer{}); err == nil {
		t.Error("trace with no file should fail")
	}
	if err := run([]string{"trace", "-top", "0", "x.json"}, &bytes.Buffer{}); err == nil {
		t.Error("trace -top 0 should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", bad}, &bytes.Buffer{}); err == nil {
		t.Error("unparseable trace file should fail")
	}
}
