package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beesim/internal/ledger"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func writeLedgerFile(t *testing.T, name string, build func(lg *ledger.Ledger)) string {
	t.Helper()
	lg := ledger.New()
	build(lg)
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func balancedLedger(sleepJ float64) func(lg *ledger.Ledger) {
	return func(lg *ledger.Ledger) {
		lg.Append(ledger.Entry{T: t0, Hive: "h1", Device: "battery", Component: "pack",
			Task: "charge", Dir: ledger.Harvest, Joules: 100, Store: "battery"})
		lg.Append(ledger.Entry{T: t0.Add(time.Hour), Hive: "h1", Device: "edge",
			Component: "pi3b", Task: "Sleep", Dir: ledger.Consume,
			Joules: sleepJ, Seconds: 3600, Store: "battery"})
		lg.SetStore("h1", "battery", 500, 500+100-sleepJ)
	}
}

func TestRunBreakdownAndAudit(t *testing.T) {
	path := writeLedgerFile(t, "run.jsonl", balancedLedger(40))
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"Energy breakdown — hive h1", "Sleep", "40.000",
		"total consumed: 40.000 J", "conservation audit: ok",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAuditFailureSetsError(t *testing.T) {
	path := writeLedgerFile(t, "bad.jsonl", func(lg *ledger.Ledger) {
		lg.Append(ledger.Entry{T: t0, Hive: "h1", Device: "edge", Component: "pi3b",
			Task: "Sleep", Dir: ledger.Consume, Joules: 10, Store: "battery"})
		lg.SetStore("h1", "battery", 500, 500) // 10 J vanished
	})
	var out bytes.Buffer
	err := run([]string{path}, &out)
	if err == nil {
		t.Fatalf("audit violation should be an error:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "violation") {
		t.Errorf("output missing violation report:\n%s", out.String())
	}
}

func TestRunDiff(t *testing.T) {
	a := writeLedgerFile(t, "a.jsonl", balancedLedger(60))
	b := writeLedgerFile(t, "b.jsonl", balancedLedger(40))
	var out bytes.Buffer
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatalf("run -diff: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"Run diff", "Sleep", "-20.000",
		"total consumed: A 60.000 J, B 40.000 J, Δ -20.000 J (-33.3%)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSVExport(t *testing.T) {
	path := writeLedgerFile(t, "run.jsonl", balancedLedger(40))
	csv := filepath.Join(t.TempDir(), "out.csv")
	var out bytes.Buffer
	if err := run([]string{"-csv", csv, path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "h1,edge,pi3b,Sleep,consume,40,3600,1") {
		t.Errorf("csv missing row:\n%s", data)
	}
}

func TestRunArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"-diff", "only-one.jsonl"}, &out); err == nil {
		t.Error("-diff with one file should error")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Error("missing file should error")
	}
}
