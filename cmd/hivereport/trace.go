package main

// The trace subcommand is the critical-path analyzer: it reads one or
// more Chrome trace JSON files (written by hivetrace/apiarysim -trace,
// or fetched from the dashboard's /api/trace/{id}), stitches them into
// one timeline, and attributes each traced upload's end-to-end latency
// to named segments — compute, per-attempt airtime, retry, backoff,
// server handling. With -metrics it cross-references the snapshot's
// histogram exemplars against the analyzed traces.
//
//	hivereport trace run.trace.json
//	hivereport trace -top 10 edge.trace.json cloud.trace.json
//	hivereport trace -metrics snap.json -json run.trace.json

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"beesim/internal/obs"
	"beesim/internal/report"
)

func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hivereport trace", flag.ContinueOnError)
	top := fs.Int("top", 5, "slowest-uploads rows to show")
	metricsPath := fs.String("metrics", "", "metrics snapshot JSON for exemplar cross-reference")
	asJSON := fs.Bool("json", false, "emit trace summaries and segment stats as JSON")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hivereport trace [-top 5] [-metrics snap.json] [-json] trace.json [more.json...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return errors.New("trace needs at least one trace JSON file")
	}
	if *top < 1 {
		return errors.New("-top must be at least 1")
	}

	lists := make([][]obs.TraceEvent, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		events, err := obs.ParseTraceJSON(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		lists = append(lists, events)
	}
	sums := obs.AnalyzeTraces(obs.Stitch(lists...))

	var snap obs.Snapshot
	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			return err
		}
		if snap, err = obs.ParseSnapshot(data); err != nil {
			return fmt.Errorf("%s: %w", *metricsPath, err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Traces   []obs.TraceSummary `json:"traces"`
			Segments []obs.SegmentStats `json:"segments"`
		}{sums, obs.AggregateSegments(sums)})
	}
	return report.WriteTraceReport(out, sums, *top, snap)
}
