// Command apiarysim runs the large-scale client/server simulation of
// Section VI, regenerating Figures 6-9: per-client energy of the edge
// and edge+cloud scenarios, server counts, loss models, and the
// crossover analysis.
//
// Usage:
//
//	apiarysim fig6 [-csv out.csv]
//	apiarysim fig7 [-cap 35] [-csv out.csv]
//	apiarysim fig8 [-loss a|b|c|all] [-csv out.csv]
//	apiarysim fig9 [-csv out.csv]
//	apiarysim sweep -from N -to M [-cap K] [-losses abc] [-chart]
//	          [-metrics] [-trace out.json] [-ledger out.jsonl]
//	          [-faults plan.json]
//	apiarysim avail [-from N -to M] [-cap K] [-amin 0.5] [-amax 1]
//	          [-points 11] [-faults plan.json] [-csv out.csv]
//	          [-metrics] [-ledger out.jsonl]
//	apiarysim scenario [-model cnn] [-placement edge|edgecloud]
//	          [-period 5m] [-cycles 12] -ledger out.jsonl
//
// With -faults the sweep prices the edge+cloud scenario under the
// plan's degraded uplink (steady drop probability and retry policy):
// expected extra attempts re-pay the upload energy and undelivered
// cycles pay the local inference fallback. The avail subcommand sweeps
// link availability itself, showing how the edge-vs-cloud crossover
// shifts as the link degrades (see docs/FAULTS.md).
//
// Every subcommand accepts -cpuprofile/-memprofile for runtime/pprof
// profiles and -workers N to bound the parallel evaluation fan-out
// (default all CPUs; 1 forces the serial path; the output bytes are
// identical either way). The scenario subcommand replays the Table I/II
// duty cycle into an energy ledger; record the edge and edge+cloud
// placements into two files and compare them with hivereport -diff.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"beesim/internal/core"
	"beesim/internal/experiments"
	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/prof"
	"beesim/internal/report"
	"beesim/internal/routine"
	"beesim/internal/slo"
	"beesim/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fig6":
		err = figure(os.Args[2:], "Figure 6 (10-400 clients, cap 10, no loss)", experiments.Figure6)
	case "fig7":
		err = fig7(os.Args[2:])
	case "fig8":
		err = fig8(os.Args[2:])
	case "fig9":
		err = figure(os.Args[2:], "Figure 9 (100-2000 clients, cap 35, losses A+B+C)", experiments.Figure9)
	case "sweep":
		err = sweep(os.Args[2:])
	case "avail":
		err = avail(os.Args[2:])
	case "scenario":
		err = scenario(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "apiarysim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apiarysim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: apiarysim <fig6|fig7|fig8|fig9|sweep|avail|scenario> [flags]`)
}

// profiled registers the flags every subcommand shares —
// -cpuprofile/-memprofile and -workers — parses args, and runs body
// between profiler start and stop, folding close errors from Stop into
// the returned error. The -workers value becomes the process-wide
// parallel default; output is byte-identical for every worker count.
func profiled(fs *flag.FlagSet, args []string, body func() error) (err error) {
	p := prof.Register(fs)
	workers := fs.Int("workers", 0,
		"worker goroutines for parallel evaluation (0 = all CPUs, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*workers)
	if err := p.Start(); err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, p.Stop())
	}()
	return body()
}

func figure(args []string, title string, run func() ([]experiments.SweepPoint, error)) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	csvPath := fs.String("csv", "", "write the series to this CSV file")
	svgPath := fs.String("svg", "", "write the figure to this SVG file")
	return profiled(fs, args, func() error {
		pts, err := run()
		if err != nil {
			return err
		}
		if err := render(title, pts, *csvPath); err != nil {
			return err
		}
		return renderSVG(title, pts, *svgPath)
	})
}

// renderSVG writes the per-client energy figure as an SVG image.
func renderSVG(title string, pts []experiments.SweepPoint, path string) error {
	if path == "" {
		return nil
	}
	edge, cloud, _, err := experiments.SweepSeries(pts)
	if err != nil {
		return err
	}
	chart := report.NewSVGChart(title, "clients", "J/client/cycle")
	chart.Add(edge)
	chart.Add(cloud)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := chart.Render(f); err != nil {
		return err
	}
	fmt.Printf("\nfigure written to %s\n", path)
	return nil
}

func fig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	maxPar := fs.Int("cap", 35, "clients allowed in parallel per slot")
	csvPath := fs.String("csv", "", "write the series to this CSV file")
	svgPath := fs.String("svg", "", "write the figure to this SVG file")
	return profiled(fs, args, func() error {
		pts, err := experiments.Figure7(*maxPar)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 7 (100-2000 clients, cap %d, no loss)", *maxPar)
		if err := render(title, pts, *csvPath); err != nil {
			return err
		}
		if err := renderSVG(title, pts, *svgPath); err != nil {
			return err
		}
		m := experiments.MilestonesOf(pts)
		fmt.Printf("\nmilestones:\n")
		if m.FirstCrossover > 0 {
			fmt.Printf("  first crossover:   %5d clients (paper, cap 35: 406)\n", m.FirstCrossover)
			fmt.Printf("  peak advantage:    %5.1f J/client at %d clients (paper: 12.5 J at 630)\n",
				float64(m.PeakAdvantage), m.PeakClients)
			fmt.Printf("  permanent win from %5d clients (paper: 803)\n", m.PermanentFrom)
		} else {
			fmt.Printf("  the edge+cloud scenario never wins at this capacity\n")
		}
		return nil
	})
}

func fig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	lossName := fs.String("loss", "all", "loss variant: a, b, c or all")
	csvPath := fs.String("csv", "", "write the series to this CSV file")
	svgPath := fs.String("svg", "", "write the figure to this SVG file")
	return profiled(fs, args, func() error {
		var v experiments.LossVariant
		switch *lossName {
		case "a":
			v = experiments.LossA
		case "b":
			v = experiments.LossB
		case "c":
			v = experiments.LossC
		case "all":
			v = experiments.LossAll
		default:
			return fmt.Errorf("unknown loss variant %q", *lossName)
		}
		pts, err := experiments.Figure8(v)
		if err != nil {
			return err
		}
		if err := render("Figure 8: "+v.String(), pts, *csvPath); err != nil {
			return err
		}
		return renderSVG("Figure 8: "+v.String(), pts, *svgPath)
	})
}

func sweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	from := fs.Int("from", 10, "smallest fleet size")
	to := fs.Int("to", 400, "largest fleet size")
	step := fs.Int("step", 1, "fleet size step")
	maxPar := fs.Int("cap", 10, "clients allowed in parallel per slot")
	model := fs.String("model", "cnn", "service model: svm or cnn")
	losses := fs.String("losses", "", "loss models to enable, e.g. \"abc\"")
	balanced := fs.Bool("balanced", false, "use the balanced fill policy")
	csvPath := fs.String("csv", "", "write the series to this CSV file")
	metrics := fs.Bool("metrics", false, "print the sweep's metrics snapshot")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline of the sweep to this file")
	ledgerPath := fs.String("ledger", "", "write the sweep's energy ledger to this JSONL file")
	faultsPath := fs.String("faults", "", "fault plan JSON degrading the edge+cloud uplink")
	return profiled(fs, args, func() error {
		m := routine.CNN
		if *model == "svm" {
			m = routine.SVM
		}
		svc, err := core.NewService(m, 5*time.Minute)
		if err != nil {
			return err
		}
		if *faultsPath != "" {
			plan, err := faults.LoadPlan(*faultsPath)
			if err != nil {
				return err
			}
			pi := power.DefaultPi3B()
			a := 1 - plan.Link.DropProb
			retry := plan.RetryOrDefault()
			svc = experiments.DegradeService(svc, a, retry,
				pi.SendAudio().Energy, pi.InferCNN().Energy)
			fmt.Printf("fault plan %s: availability %.2f, delivery %.3f within %d attempts\n",
				*faultsPath, a, retry.DeliveryProb(a), retry.MaxAttempts)
		}
		policy := core.FillSequential
		if *balanced {
			policy = core.FillBalanced
		}
		l := core.Losses{}
		for _, c := range *losses {
			switch c {
			case 'a':
				l.SlotSaturation = true
				l.SaturationMargin = 5
				l.SaturationFactor = 0.10
			case 'b':
				l.TransferPenalty = 1500 * time.Millisecond
			case 'c':
				l.ClientLossFrac = 0.10
				l.ClientLossSD = 2
			default:
				return fmt.Errorf("unknown loss %q", string(c))
			}
		}
		sweepCfg := experiments.SweepConfig{
			Service: svc,
			Server:  core.DefaultServer(*maxPar),
			Losses:  l,
			From:    *from, To: *to, Step: *step,
			Policy: policy,
			Seed:   7,
		}
		if *metrics {
			sweepCfg.Metrics = obs.NewRegistry()
		}
		if *tracePath != "" {
			sweepCfg.Tracer = obs.NewTracer(time.Unix(0, 0).UTC())
		}
		if *ledgerPath != "" {
			sweepCfg.Ledger = ledger.New()
		}
		pts, err := experiments.Sweep(sweepCfg)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("sweep %d-%d clients, cap %d, %s, losses %q",
			*from, *to, *maxPar, svc.Name, *losses)
		if err := render(title, pts, *csvPath); err != nil {
			return err
		}
		if *tracePath != "" {
			err := writeFile(*tracePath, func(f *os.File) error {
				return sweepCfg.Tracer.WriteJSON(f)
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n%d trace events written to %s (open at ui.perfetto.dev)\n",
				sweepCfg.Tracer.Len(), *tracePath)
		}
		if *ledgerPath != "" {
			err := writeFile(*ledgerPath, func(f *os.File) error {
				return sweepCfg.Ledger.WriteJSONL(f)
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n%d ledger entries written to %s (inspect with hivereport)\n",
				sweepCfg.Ledger.Len(), *ledgerPath)
		}
		if *metrics {
			fmt.Printf("\nmetrics:\n")
			if err := sweepCfg.Metrics.Snapshot().WriteText(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	})
}

// avail runs the availability sweep: the Figure 6/7 client-range sweep
// re-evaluated at each point of a link-availability grid, with the
// edge+cloud cycle priced up by the expected retry/fallback tax. The
// table shows the crossover fleet size drifting upward (and eventually
// vanishing) as the link degrades.
func avail(args []string) error {
	fs := flag.NewFlagSet("avail", flag.ExitOnError)
	from := fs.Int("from", 100, "smallest fleet size")
	to := fs.Int("to", 2000, "largest fleet size")
	step := fs.Int("step", 10, "fleet size step")
	maxPar := fs.Int("cap", 35, "clients allowed in parallel per slot")
	amin := fs.Float64("amin", 0.5, "lowest link availability")
	amax := fs.Float64("amax", 1.0, "highest link availability")
	points := fs.Int("points", 11, "availability grid points (ends inclusive)")
	faultsPath := fs.String("faults", "", "fault plan JSON supplying the seed and retry policy")
	sloPath := fs.String("slo", "", "SLO spec JSON evaluated per availability point (exit nonzero on breach)")
	csvPath := fs.String("csv", "", "write the availability series to this CSV file")
	metrics := fs.Bool("metrics", false, "print the sweep's metrics snapshot")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	ledgerPath := fs.String("ledger", "", "write the per-point energy ledger to this JSONL file")
	return profiled(fs, args, func() error {
		cfg, err := experiments.DefaultAvailabilityConfig()
		if err != nil {
			return err
		}
		cfg.Server = core.DefaultServer(*maxPar)
		cfg.From, cfg.To, cfg.Step = *from, *to, *step
		cfg.AvailFrom, cfg.AvailTo, cfg.AvailSteps = *amin, *amax, *points
		if *faultsPath != "" {
			plan, err := faults.LoadPlan(*faultsPath)
			if err != nil {
				return err
			}
			cfg.Retry = plan.RetryOrDefault()
			cfg.Seed = plan.Seed
		}
		if *metrics {
			cfg.Metrics = obs.NewRegistry()
		}
		if *tracePath != "" {
			cfg.Tracer = obs.NewTracer(time.Unix(0, 0).UTC())
		}
		if *ledgerPath != "" {
			cfg.Ledger = ledger.New()
		}
		var spec slo.Spec
		if *sloPath != "" {
			if spec, err = slo.LoadSpec(*sloPath); err != nil {
				return err
			}
		}
		pts, err := experiments.AvailabilitySweep(cfg)
		if err != nil {
			return err
		}
		samples := cfg.UploadSamples
		if samples <= 0 {
			samples = experiments.DefaultUploadSamples
		}

		fmt.Printf("availability sweep: %d-%d clients, cap %d, %d attempts max\n\n",
			cfg.From, cfg.To, *maxPar, cfg.Retry.MaxAttempts)
		cols := []string{"Availability", "Delivery", "E[attempts]",
			"First crossover", "Edge J/client", "Edge+cloud J/client",
			"Upload p50", "Upload p99"}
		if *sloPath != "" {
			cols = append(cols, "SLO", "Max burn")
		}
		t := report.NewTable("", cols...)
		breaches := 0
		for _, p := range pts {
			cross := "never"
			if p.FirstCrossover > 0 {
				cross = fmt.Sprintf("%d clients", p.FirstCrossover)
			}
			row := []string{
				fmt.Sprintf("%.2f", p.Availability),
				fmt.Sprintf("%.3f", p.DeliveryProb),
				fmt.Sprintf("%.2f", p.ExpectedAttempts),
				cross,
				fmt.Sprintf("%.1f", float64(p.EdgeJClient)),
				fmt.Sprintf("%.1f", float64(p.CloudJClient)),
				fmt.Sprintf("%.1fs", p.UploadP50S),
				fmt.Sprintf("%.1fs", p.UploadP99S),
			}
			if *sloPath != "" {
				rep, err := slo.Evaluate(spec, slo.Input{
					Snapshot: p.Obs,
					Window:   time.Duration(samples) * experiments.Period,
				})
				if err != nil {
					return err
				}
				verdict := "pass"
				if !rep.Pass() {
					verdict = fmt.Sprintf("FAIL (%d)", rep.Breaches())
					breaches++
				}
				maxBurn := 0.0
				for _, res := range rep.Results {
					if res.Burn > maxBurn {
						maxBurn = res.Burn
					}
				}
				row = append(row, verdict, fmt.Sprintf("%.3f", maxBurn))
			}
			t.MustAddRow(row...)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}

		if *csvPath != "" {
			edge, cloud, crossover, delivered, uploadP50, uploadP99, err := experiments.AvailabilitySeries(pts)
			if err != nil {
				return err
			}
			err = writeFile(*csvPath, func(f *os.File) error {
				return report.WriteSeriesCSV(f, "availability",
					edge, cloud, crossover, delivered, uploadP50, uploadP99)
			})
			if err != nil {
				return err
			}
			fmt.Printf("\nseries written to %s\n", *csvPath)
		}
		if *tracePath != "" {
			err := writeFile(*tracePath, func(f *os.File) error {
				return cfg.Tracer.WriteJSON(f)
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n%d trace events written to %s (open at ui.perfetto.dev)\n",
				cfg.Tracer.Len(), *tracePath)
		}
		if *ledgerPath != "" {
			err := writeFile(*ledgerPath, func(f *os.File) error {
				return cfg.Ledger.WriteJSONL(f)
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n%d ledger entries written to %s (inspect with hivereport)\n",
				cfg.Ledger.Len(), *ledgerPath)
			rep := ledger.Audit(cfg.Ledger, ledger.DefaultTolerance())
			fmt.Printf("  %s\n", rep.String())
			if !rep.OK() {
				return fmt.Errorf("conservation audit failed with %d violation(s)", len(rep.Violations))
			}
		}
		if *metrics {
			fmt.Printf("\nmetrics:\n")
			if err := cfg.Metrics.Snapshot().WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if *sloPath != "" && breaches > 0 {
			return fmt.Errorf("SLO breached at %d of %d availability points", breaches, len(pts))
		}
		return nil
	})
}

// scenario replays the Table I/II duty cycle into an energy ledger: one
// hive, a fixed number of wake-up cycles, every task attributed. Edge
// tasks drain the battery (store-bound); cloud tasks are grid-powered
// attribution overlays. The store delta is registered from the summed
// drain, so the resulting file passes hivereport's conservation audit.
// Record both placements and diff them:
//
//	apiarysim scenario -placement edge -ledger edge.jsonl
//	apiarysim scenario -placement edgecloud -ledger edgecloud.jsonl
//	hivereport -diff edge.jsonl edgecloud.jsonl
func scenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	model := fs.String("model", "cnn", "service model: svm or cnn")
	placement := fs.String("placement", "edge", "service placement: edge or edgecloud")
	period := fs.Duration("period", 5*time.Minute, "wake-up period")
	cycles := fs.Int("cycles", 12, "number of wake-up cycles to record")
	hiveID := fs.String("hive", "apiary-1", "hive id for the ledger entries")
	ledgerPath := fs.String("ledger", "", "write the energy ledger to this JSONL file (required)")
	return profiled(fs, args, func() error {
		if *ledgerPath == "" {
			return errors.New("scenario needs -ledger out.jsonl")
		}
		if *cycles <= 0 {
			return fmt.Errorf("non-positive cycle count %d", *cycles)
		}
		spec := routine.Spec{Period: *period}
		switch *model {
		case "cnn":
			spec.Model = routine.CNN
		case "svm":
			spec.Model = routine.SVM
		default:
			return fmt.Errorf("unknown model %q", *model)
		}
		switch *placement {
		case "edge":
			spec.Placement = routine.EdgeOnly
		case "edgecloud":
			spec.Placement = routine.EdgeCloud
		default:
			return fmt.Errorf("unknown placement %q", *placement)
		}
		cycle, err := routine.Build(power.DefaultPi3B(), power.DefaultCloud(), spec)
		if err != nil {
			return err
		}

		lg := ledger.New()
		// A fixed virtual epoch keeps equal-flag runs byte-identical.
		at := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
		for i := 0; i < *cycles; i++ {
			at = cycle.RecordLedger(lg, *hiveID, at)
		}
		// The edge tasks drain a fully charged battery; registering the
		// resulting delta closes the conservation books.
		initialJ := float64(scenarioBatteryWh * 3600)
		drainJ := float64(cycle.EdgeEnergy()) * float64(*cycles)
		lg.SetStore(*hiveID, "battery", initialJ, initialJ-drainJ)

		if err := writeFile(*ledgerPath, func(f *os.File) error { return lg.WriteJSONL(f) }); err != nil {
			return err
		}
		fmt.Printf("scenario: %s, %s, %d cycle(s) of %v\n",
			spec.Model, spec.Placement, *cycles, *period)
		fmt.Printf("  edge energy:  %v (%v per cycle)\n",
			cycle.EdgeEnergy()*units.Joules(*cycles), cycle.EdgeEnergy())
		fmt.Printf("  cloud energy: %v (%v per cycle)\n",
			cycle.CloudEnergy()*units.Joules(*cycles), cycle.CloudEnergy())
		fmt.Printf("  %d ledger entries written to %s (inspect with hivereport)\n",
			lg.Len(), *ledgerPath)
		rep := ledger.Audit(lg, ledger.DefaultTolerance())
		fmt.Printf("  %s\n", rep.String())
		if !rep.OK() {
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v.String())
			}
			return fmt.Errorf("conservation audit failed with %d violation(s)", len(rep.Violations))
		}
		return nil
	})
}

// scenarioBatteryWh is the paper's 74 Wh battery, the initial charge
// assumed by the scenario subcommand's store delta.
const scenarioBatteryWh = 74

// writeFile creates path, runs write, and closes the file, folding in
// the close error (where a failing flush would otherwise vanish).
func writeFile(path string, write func(f *os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func render(title string, pts []experiments.SweepPoint, csvPath string) error {
	edge, cloud, servers, err := experiments.SweepSeries(pts)
	if err != nil {
		return err
	}
	chart := report.NewChart(title, "clients", "J/client/cycle")
	chart.Add(edge)
	chart.Add(cloud)
	if err := chart.Render(os.Stdout); err != nil {
		return err
	}

	// Milestone rows at the sweep's quartiles.
	t := report.NewTable("", "Clients", "Edge J/client", "Edge+cloud J/client", "Servers", "Winner")
	for _, i := range []int{0, len(pts) / 4, len(pts) / 2, 3 * len(pts) / 4, len(pts) - 1} {
		p := pts[i]
		winner := "edge"
		if p.Diff() > 0 {
			winner = "edge+cloud"
		}
		t.MustAddRow(
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.1f", float64(p.EdgeOnly.PerClient())),
			fmt.Sprintf("%.1f", float64(p.EdgeCloud.PerClient())),
			fmt.Sprintf("%d", p.EdgeCloud.Servers),
			winner)
	}
	fmt.Println()
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if xs, err := experiments.CrossoverClients(pts); err == nil && len(xs) > 0 {
		fmt.Printf("\ncrossovers at: ")
		for i, x := range xs {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%.0f", x)
		}
		fmt.Println(" clients")
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteSeriesCSV(f, "clients", edge, cloud, servers); err != nil {
			return err
		}
		fmt.Printf("\nseries written to %s\n", csvPath)
	}
	return nil
}
