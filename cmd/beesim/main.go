// Command beesim is the umbrella CLI: it regenerates the paper's tables
// and small figures directly in the terminal.
//
// Usage:
//
//	beesim tables              # Tables I and II
//	beesim fig3                # Figure 3: average power vs wake-up period
//	beesim campaign [-n 319]   # Section IV routine statistics
//	beesim campaign -faults plan.json   # ... replayed through a fault plan
//	beesim recommend -clients N [-cap 35] [-losses abc]
//
// With -faults the campaign replays its wake-ups through the
// deterministic fault plan: failed uploads retry with backoff, fall
// back to local inference, and queue for a buffer-and-drain flush on
// recovery (see docs/FAULTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"beesim/internal/adaptive"
	"beesim/internal/core"
	"beesim/internal/experiments"
	"beesim/internal/faults"
	"beesim/internal/netsim"
	"beesim/internal/optimizer"
	"beesim/internal/parallel"
	"beesim/internal/power"
	"beesim/internal/report"
	"beesim/internal/routine"
	"beesim/internal/services"
	"beesim/internal/solar"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tables":
		err = tables()
	case "fig3":
		err = fig3()
	case "campaign":
		err = campaign(os.Args[2:])
	case "recommend":
		err = recommend(os.Args[2:])
	case "seasons":
		err = seasons(os.Args[2:])
	case "apiary":
		err = apiary(os.Args[2:])
	case "policies":
		err = policies(os.Args[2:])
	case "optimize":
		err = optimize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "beesim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "beesim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: beesim <command> [flags]

commands:
  tables      print Tables I and II (per-task energy of both scenarios)
  fig3        print Figure 3 (average power vs wake-up period)
  campaign    replay the Section-IV measurement campaign
  recommend   pick a placement for a fleet size
  seasons     year-round energy balance of one deployed hive
  apiary      the paper's five-hive deployment (2 Cachan + 3 Lyon)
  policies    fixed vs adaptive orchestration policies
  optimize    search wake period x capacity x placement for a fleet

see also: hivetrace (Figure 2), apiarysim (Figures 6-9), queendetect (Figure 5),
          hivenet (networked cloud service + edge agents)`)
}

func tables() error {
	one, err := experiments.TableI()
	if err != nil {
		return err
	}
	two, err := experiments.TableII()
	if err != nil {
		return err
	}
	fmt.Println("TABLE I: edge scenarios")
	fmt.Println()
	for _, s := range one {
		if err := experiments.RenderScenario(s).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Println("TABLE II: edge+cloud scenarios")
	fmt.Println()
	for _, s := range two {
		if err := experiments.RenderScenario(s).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func fig3() error {
	pts := experiments.Figure3()
	t := report.NewTable("Figure 3: average consumed power vs wake-up period",
		"Period (min)", "Average power (W)")
	for _, p := range pts {
		t.MustAddRow(fmt.Sprintf("%.0f", p.Period.Minutes()),
			fmt.Sprintf("%.3f", float64(p.AvgPower)))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	chart := report.NewChart("", "wake-up period (min)", "average power (W)")
	chart.Add(experiments.Figure3Series())
	return chart.Render(os.Stdout)
}

// workersFlag registers the shared -workers flag on fs. After parsing,
// pass the value to parallel.SetDefault; every parallel stage then
// resolves it. Outputs are byte-identical for any worker count.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines for parallel evaluation (0 = all CPUs, 1 = serial)")
}

func campaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	n := fs.Int("n", 319, "number of routines to replay")
	faultsPath := fs.String("faults", "", "replay the campaign's uploads through this fault plan JSON")
	period := fs.Duration("period", 10*time.Minute, "wake-up period of the faulted campaign")
	bufferCap := fs.Int("buffer", 0, "upload buffer depth of the faulted campaign (0 = default)")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*workers)
	if *faultsPath != "" {
		return faultyCampaign(*faultsPath, *n, *period, *bufferCap)
	}
	st, err := experiments.RoutineStats(*n)
	if err != nil {
		return err
	}
	fmt.Printf("Section IV measurement campaign (%d routines)\n\n", st.Routines)
	fmt.Printf("  mean routine duration: %6.1f s   (paper: 89 s)\n", st.MeanDuration.Seconds())
	fmt.Printf("  duration sigma:        %6.1f s   (paper: 3.5 s)\n", st.SDDuration.Seconds())
	fmt.Printf("  mean routine power:    %6.3f W   (paper: 2.14 W)\n", float64(st.MeanPower))
	fmt.Printf("  power sigma:           %6.3f W   (paper: 0.009 W)\n", float64(st.SDPower))
	fmt.Printf("  mean routine energy:   %6.1f J   (paper: 190.1 J)\n", float64(st.MeanEnergy))
	return nil
}

// faultyCampaign replays the measurement campaign's uploads through a
// fault plan and reports the payload accounting: delivered, flushed
// from the buffer, still buffered, dropped, and the retry/fallback
// energy the faults cost.
func faultyCampaign(planPath string, n int, period time.Duration, bufferCap int) error {
	plan, err := faults.LoadPlan(planPath)
	if err != nil {
		return err
	}
	// The campaign's virtual epoch; fixed so equal plans replay
	// byte-identically (faults are keyed by virtual time, never wall
	// clock).
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	st, err := routine.SimulateFaultyCampaign(power.DefaultPi3B(), routine.FaultyCampaignConfig{
		Link:      netsim.DefaultConfig(),
		Plan:      plan,
		Start:     start,
		Period:    period,
		Routines:  n,
		BufferCap: bufferCap,
	})
	if err != nil {
		return err
	}
	retry := plan.RetryOrDefault()
	fmt.Printf("faulted campaign (%d routines, wake every %v, plan seed %d, %d attempts max)\n\n",
		st.Routines, period, plan.Seed, retry.MaxAttempts)
	fmt.Printf("  delivered fresh:    %6d\n", st.Delivered)
	fmt.Printf("  flushed from queue: %6d\n", st.Flushed)
	fmt.Printf("  still buffered:     %6d\n", st.Buffered)
	fmt.Printf("  dropped (evicted):  %6d\n", st.Dropped)
	fmt.Printf("  local fallbacks:    %6d\n", st.Fallbacks)
	fmt.Printf("  send attempts:      %6d (%d failed)\n", st.Attempts, st.Failures)
	fmt.Printf("  retry energy:       %v\n", st.RetryEnergy)
	fmt.Printf("  fallback energy:    %v\n", st.FallbackEnergy)
	if !st.Conserved() {
		return fmt.Errorf("campaign payloads not conserved: %+v", st)
	}
	fmt.Printf("\n  payload conservation: %d + %d + %d + %d == %d routines\n",
		st.Delivered, st.Flushed, st.Buffered, st.Dropped, st.Routines)
	return nil
}

func recommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	clients := fs.Int("clients", 0, "fleet size (required)")
	maxPar := fs.Int("cap", 35, "clients allowed in parallel per time slot")
	model := fs.String("model", "cnn", "queen-detection model: svm or cnn")
	losses := fs.String("losses", "", "loss models to enable, e.g. \"abc\" or \"ab\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients <= 0 {
		return fmt.Errorf("-clients must be positive")
	}
	m := routine.CNN
	if strings.EqualFold(*model, "svm") {
		m = routine.SVM
	}
	svc, err := core.NewService(m, 5*time.Minute)
	if err != nil {
		return err
	}
	l := core.PaperLosses(
		strings.ContainsRune(*losses, 'a'),
		strings.ContainsRune(*losses, 'b'),
		strings.ContainsRune(*losses, 'c'))
	rec, err := core.Recommend(*clients, core.DefaultServer(*maxPar), svc, l)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d smart beehives, slot capacity %d, service %s\n\n",
		*clients, *maxPar, svc.Name)
	fmt.Printf("  edge scenario:       %7.1f J/client/cycle\n", float64(rec.EdgeOnlyPerClient))
	fmt.Printf("  edge+cloud scenario: %7.1f J/client/cycle  (%d server(s))\n",
		float64(rec.EdgeCloudPerClient), rec.Servers)
	fmt.Printf("\n  recommendation: %v (saves %.1f J/client/cycle)\n",
		rec.Placement, float64(rec.Margin()))
	return nil
}

func seasons(args []string) error {
	fs := flag.NewFlagSet("seasons", flag.ExitOnError)
	days := fs.Int("days", 3, "days simulated per month")
	wake := fs.Duration("wake", 10*time.Minute, "wake-up period")
	site := fs.String("site", "cachan", "deployment site: cachan or lyon")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*workers)
	loc := solar.Cachan
	if *site == "lyon" {
		loc = solar.Lyon
	}
	pts, err := experiments.Seasonal(loc, *days, *wake)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("year-round energy balance (%s, %v wake-ups, %d day(s)/month)", loc.Name, *wake, *days),
		"Month", "Routines/day", "Missed/day", "Harvest/day", "Consumption/day")
	for _, p := range pts {
		t.MustAddRow(
			p.Month.String(),
			fmt.Sprintf("%.0f", p.RoutinesPerDay),
			fmt.Sprintf("%.0f", p.MissedPerDay),
			p.HarvestPerDay.String(),
			p.ConsumptionPerDay.String())
	}
	return t.Render(os.Stdout)
}

func apiary(args []string) error {
	fs := flag.NewFlagSet("apiary", flag.ExitOnError)
	days := fs.Int("days", 7, "days to simulate")
	wake := fs.Duration("wake", 10*time.Minute, "wake-up period")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*workers)
	results, err := experiments.Apiary(*days, *wake)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("the paper's five-hive deployment over %d day(s)", *days),
		"Hive", "Site", "Routines", "Missed", "Outages", "Recorder energy", "Harvest")
	for _, r := range results {
		t.MustAddRow(
			r.Hive.Name,
			r.Hive.Location.Name,
			fmt.Sprintf("%d", r.Trace.Wakeups),
			fmt.Sprintf("%d", r.Trace.MissedWakeups),
			fmt.Sprintf("%d", r.Trace.Outages),
			r.Trace.RecorderEnergy.String(),
			r.Trace.HarvestedEnergy.String())
	}
	return t.Render(os.Stdout)
}

func policies(args []string) error {
	fs := flag.NewFlagSet("policies", flag.ExitOnError)
	days := fs.Int("days", 7, "days to simulate")
	month := fs.Int("month", 4, "starting month (1-12)")
	soc := fs.Float64("soc", 0.5, "initial battery state of charge")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *month < 1 || *month > 12 {
		return fmt.Errorf("month %d out of 1-12", *month)
	}
	cfg := adaptive.DefaultConfig()
	cfg.Days = *days
	cfg.InitialSoC = *soc
	cfg.Start = time.Date(2023, time.Month(*month), 10, 0, 0, 0, 0, time.UTC)
	results, err := experiments.PolicyComparison(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("orchestration policies over %d day(s) from %s", *days, cfg.Start.Format("Jan 2006")),
		"Policy", "Routines", "Missed", "Cloud cycles", "Energy", "Min SoC")
	for _, r := range results {
		t.MustAddRow(
			r.Policy,
			fmt.Sprintf("%d", r.Routines),
			fmt.Sprintf("%d", r.MissedRoutines),
			fmt.Sprintf("%d", r.CloudCycles),
			r.EdgeEnergy.String(),
			fmt.Sprintf("%.0f%%", 100*r.MinSoC))
	}
	return t.Render(os.Stdout)
}

func optimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	hives := fs.Int("hives", 0, "fleet size (required)")
	staleness := fs.Duration("staleness", time.Hour, "maximum data age the beekeeper accepts")
	bundle := fs.String("services", "queen", "comma-separated services: queen,pollen,count,swarm")
	losses := fs.String("losses", "", "loss models to enable, e.g. \"ab\"")
	workers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*workers)
	if *hives <= 0 {
		return fmt.Errorf("-hives must be positive")
	}
	var kinds []services.Kind
	for _, tok := range strings.Split(*bundle, ",") {
		switch strings.TrimSpace(tok) {
		case "queen":
			kinds = append(kinds, services.QueenDetection)
		case "pollen":
			kinds = append(kinds, services.PollenDetection)
		case "count":
			kinds = append(kinds, services.BeeCounting)
		case "swarm":
			kinds = append(kinds, services.SwarmPrediction)
		case "":
		default:
			return fmt.Errorf("unknown service %q", tok)
		}
	}
	req := optimizer.Requirements{
		Hives:        *hives,
		Services:     kinds,
		MaxStaleness: *staleness,
		Losses: core.PaperLosses(
			strings.ContainsRune(*losses, 'a'),
			strings.ContainsRune(*losses, 'b'),
			strings.ContainsRune(*losses, 'c')),
	}
	res, err := optimizer.Optimize(req, optimizer.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("searched %d configurations (%d infeasible) for %d hives\n\n",
		res.Evaluated, res.Infeasible, *hives)
	fmt.Printf("optimum: wake every %v, slot capacity %d, %d server(s)\n",
		res.Best.Period, res.Best.MaxParallel, res.Best.Servers)
	fmt.Printf("  %.1f J/hive/cycle, %s fleet-wide per day\n", float64(res.Best.PerHive), res.Best.PerDay)
	decided := make([]services.Kind, 0, len(res.Best.Plan.Decisions))
	for k := range res.Best.Plan.Decisions {
		decided = append(decided, k)
	}
	sort.Slice(decided, func(i, j int) bool { return decided[i] < decided[j] })
	for _, k := range decided {
		fmt.Printf("  %-18v -> %v\n", k, res.Best.Plan.Decisions[k])
	}
	fmt.Println("\nenergy/freshness frontier:")
	t := report.NewTable("", "Wake period", "J/hive/cycle", "Fleet J/day", "Servers")
	for _, c := range res.Frontier {
		t.MustAddRow(c.Period.String(),
			fmt.Sprintf("%.1f", float64(c.PerHive)),
			c.PerDay.String(),
			fmt.Sprintf("%d", c.Servers))
	}
	return t.Render(os.Stdout)
}
