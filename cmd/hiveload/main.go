// Command hiveload is the fleet-scale load tool for the hivenet stack:
// it derives a deterministic open-loop traffic schedule for N simulated
// hives from a LoadSpec, sizes the deployment against an SLO with a
// virtual-time capacity planner, and replays the same schedule at
// socket level against live servers for stress and soak testing.
//
// Usage:
//
//	hiveload plan -spec fleet.json -slo slo.json [-workers N]
//	              [-max-servers 64] [-seed S] [-csv knee.csv]
//	hiveload schedule -spec fleet.json [-workers N] [-n 0]
//	hiveload run -spec fleet.json (-addr host:port[,host:port...] | -local N)
//	             [-workers N] [-sleep-scale 0] [-stall-ms 0]
//
// plan and schedule are deterministic: same spec + seed = byte-identical
// stdout at any -workers. run talks to real servers, so its measured
// latencies are wall-clock; with -local N it boots N in-process hivenet
// shards first and reports their server-side stats after the replay.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"beesim/internal/hivenet"
	"beesim/internal/loadgen"
	"beesim/internal/obs"
	"beesim/internal/slo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = plan(os.Args[2:])
	case "schedule":
		err = schedule(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hiveload: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hiveload:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hiveload plan -spec fleet.json -slo slo.json [-workers N] [-max-servers 64] [-seed S] [-csv knee.csv]
  hiveload schedule -spec fleet.json [-workers N] [-n 0]
  hiveload run -spec fleet.json (-addr host:port[,...] | -local N) [-workers N] [-sleep-scale 0] [-stall-ms 0]`)
}

// loadSpec loads the -spec file with an optional seed override.
func loadSpec(path string, seed uint64, seedSet bool) (loadgen.LoadSpec, error) {
	if path == "" {
		return loadgen.LoadSpec{}, fmt.Errorf("-spec is required")
	}
	spec, err := loadgen.LoadFile(path)
	if err != nil {
		return loadgen.LoadSpec{}, err
	}
	if seedSet {
		spec.Seed = seed
	}
	return spec, nil
}

func plan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	specPath := fs.String("spec", "", "load spec JSON (required)")
	sloPath := fs.String("slo", "", "SLO spec JSON (required)")
	workers := fs.Int("workers", 0, "worker bound (0 = GOMAXPROCS; any value is byte-identical)")
	maxServers := fs.Int("max-servers", loadgen.DefaultMaxServers, "capacity search ceiling")
	seed := fs.Uint64("seed", 0, "override the spec's seed")
	csvPath := fs.String("csv", "", "also write the knee sweep as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	spec, err := loadSpec(*specPath, *seed, seedSet)
	if err != nil {
		return err
	}
	if *sloPath == "" {
		return fmt.Errorf("-slo is required")
	}
	sloSpec, err := slo.LoadSpec(*sloPath)
	if err != nil {
		return err
	}
	evs, err := loadgen.ScheduleParallel(spec, *workers)
	if err != nil {
		return err
	}
	report, err := loadgen.Plan(spec, evs, sloSpec, loadgen.PlanOptions{
		MaxServers: *maxServers,
		Workers:    *workers,
	})
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if err := report.WriteText(out); err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := report.WriteKneeCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func schedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	specPath := fs.String("spec", "", "load spec JSON (required)")
	workers := fs.Int("workers", 0, "worker bound (byte-identical at any value)")
	n := fs.Int("n", 0, "print only the first n events (0 = all)")
	seed := fs.Uint64("seed", 0, "override the spec's seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	spec, err := loadSpec(*specPath, *seed, seedSet)
	if err != nil {
		return err
	}
	evs, err := loadgen.ScheduleParallel(spec, *workers)
	if err != nil {
		return err
	}
	if *n > 0 && *n < len(evs) {
		evs = evs[:*n]
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	return loadgen.WriteCSV(out, evs)
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "load spec JSON (required)")
	addrList := fs.String("addr", "", "comma-separated live server addresses (one per shard)")
	local := fs.Int("local", 0, "boot N in-process server shards instead of dialing -addr")
	workers := fs.Int("workers", 0, "concurrent hive session bound (0 = GOMAXPROCS)")
	sleepScale := fs.Float64("sleep-scale", 0, "scale real retry-backoff sleeps (0 = retry immediately)")
	stallMS := fs.Float64("stall-ms", -1, "override the spec's per-upload server stall for -local shards")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath, 0, false)
	if err != nil {
		return err
	}

	var addrs, dashes []string
	var servers []*hivenet.Server
	switch {
	case *local > 0:
		if *stallMS >= 0 {
			spec.Server.StallMS = *stallMS
		}
		var closeAll func()
		servers, addrs, dashes, closeAll, err = bootLocal(spec, *local)
		if err != nil {
			return err
		}
		defer closeAll()
	case *addrList != "":
		addrs = strings.Split(*addrList, ",")
	default:
		return fmt.Errorf("run needs -addr or -local")
	}

	evs, err := loadgen.ScheduleParallel(spec, *workers)
	if err != nil {
		return err
	}
	started := time.Now() //beelint:allow walltime real replay duration for the report
	res, err := loadgen.Run(spec, evs, loadgen.RunOptions{
		Addrs:      addrs,
		Dashboards: dashes,
		Workers:    *workers,
		SleepScale: *sleepScale,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(started) //beelint:allow walltime real replay duration for the report

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "replayed %q: %d hives, %d uploads offered in %.2fs wall\n",
		spec.Name, spec.Hives, res.Offered, elapsed.Seconds())
	fmt.Fprintf(out, "  delivered    %d (%.4f)\n", res.Delivered, frac(res.Delivered, res.Offered))
	fmt.Fprintf(out, "  lost         %d\n", res.Lost)
	fmt.Fprintf(out, "  unattempted  %d\n", res.Unattempted)
	fmt.Fprintf(out, "  rejects      %d (typed over-capacity answers)\n", res.Rejected)
	fmt.Fprintf(out, "  link drops   %d\n", res.DroppedLink)
	fmt.Fprintf(out, "  sessions     refused %d, failed %d\n", res.RefusedSessions, res.FailedSessions)
	if res.FirstErr != nil {
		fmt.Fprintf(out, "  first error  %v\n", res.FirstErr)
	}
	fmt.Fprintf(out, "  reads        %d ok, %d errors\n", res.Reads, res.ReadErrors)
	if h, ok := res.Registry.Snapshot().FindHistogram(loadgen.MetricUploadWallSeconds); ok {
		if p50, ok := h.Quantile(0.5); ok {
			p99, _ := h.Quantile(0.99)
			fmt.Fprintf(out, "  wall latency p50 %.4fs, p99 %.4fs over %d uploads\n", p50, p99, h.Count)
		}
	}
	for i, s := range servers {
		st := s.Stats()
		fmt.Fprintf(out, "  shard %d: sessions %d uploads %d rejects %d shed %d\n",
			i, st.Sessions, st.Uploads, st.Rejects, st.ArchiveShed)
	}
	return nil
}

func frac(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// bootLocal starts n in-process server shards sized for the spec —
// slot plane provisioned for one session per hive, admission plane
// taken from the spec's server shape verbatim — each with a loopback
// dashboard so the schedule's read traffic hits a real HTTP surface.
func bootLocal(spec loadgen.LoadSpec, n int) (servers []*hivenet.Server, addrs, dashes []string, closeAll func(), err error) {
	perShard := spec.Hives/n + 1
	cfg := hivenet.DefaultServerConfig()
	cfg.TrainCorpus = 16
	cfg.ClipSeconds = spec.ClipS
	cfg.Seed = spec.Seed
	cfg.MaxParallel = perShard
	cfg.Slots = 2
	cfg.Metrics = obs.NewRegistry()
	cfg.Admission = hivenet.AdmissionConfig{
		MaxSessions:        spec.Server.MaxSessions,
		MaxInflightUploads: spec.Server.MaxInflight,
		MaxArchiveRecords:  spec.Server.MaxArchiveRecords,
		UploadStall:        time.Duration(spec.Server.StallMS * float64(time.Millisecond)),
	}
	var listeners []net.Listener
	closeAll = func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
		for _, s := range servers {
			_ = s.Close()
		}
	}
	for i := 0; i < n; i++ {
		s, serr := hivenet.NewServer("127.0.0.1:0", cfg)
		if serr != nil {
			closeAll()
			return nil, nil, nil, nil, serr
		}
		go func() { _ = s.Serve() }()
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			closeAll()
			return nil, nil, nil, nil, lerr
		}
		listeners = append(listeners, ln)
		go func() { _ = http.Serve(ln, hivenet.NewDashboard(s)) }()
		dashes = append(dashes, "http://"+ln.Addr().String())
	}
	return servers, addrs, dashes, closeAll, nil
}
