// Command hivetrace runs the deployed-hive simulation of Figure 2: a
// multi-day discrete-event trace of one smart beehive (solar panel,
// battery, weather, colony, duty-cycled recorder), printed as a summary
// and optionally exported as CSV for plotting, a Chrome trace_event
// timeline for Perfetto, and a metrics snapshot.
//
// Usage:
//
//	hivetrace [-days 7] [-wake 10m] [-site cachan|lyon] [-csv out.csv]
//	          [-trace out.json] [-trace-events] [-metrics]
//	          [-metrics-csv out.csv] [-empty] [-no-brownout]
//
// Traces and metrics are keyed by the virtual simulation clock, so two
// runs with the same seed produce byte-identical exports (see
// docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"beesim/internal/deployment"
	"beesim/internal/obs"
	"beesim/internal/report"
	"beesim/internal/solar"
	"beesim/internal/timeseries"
)

func main() {
	days := flag.Int("days", 7, "days to simulate")
	wake := flag.Duration("wake", 10*time.Minute, "recorder wake-up period")
	site := flag.String("site", "cachan", "deployment site: cachan or lyon")
	csvPath := flag.String("csv", "", "write the trace series to this CSV file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	traceEvents := flag.Bool("trace-events", false, "include every DES engine event in the trace (verbose)")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot after the summary")
	metricsCSV := flag.String("metrics-csv", "", "write the metrics snapshot to this CSV file")
	empty := flag.Bool("empty", false, "simulate an empty hive (no colony yet)")
	noBrownout := flag.Bool("no-brownout", false, "disable the night bus brownout")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := deployment.DefaultConfig()
	cfg.Days = *days
	cfg.WakePeriod = *wake
	cfg.Seed = *seed
	cfg.NightBrownout = !*noBrownout
	switch *site {
	case "cachan":
		cfg.Location = solar.Cachan
	case "lyon":
		cfg.Location = solar.Lyon
	default:
		fmt.Fprintf(os.Stderr, "hivetrace: unknown site %q\n", *site)
		os.Exit(2)
	}
	if *empty {
		cfg.Colony.Population = 0
	}
	if *metrics || *metricsCSV != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *tracePath != "" {
		cfg.Tracer = obs.NewTracer(cfg.Start)
		cfg.TraceEngineEvents = *traceEvents
	}

	tr, err := deployment.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivetrace:", err)
		os.Exit(1)
	}

	fmt.Printf("hive trace: %s, %d day(s), wake every %v\n\n", cfg.Location.Name, cfg.Days, cfg.WakePeriod)
	fmt.Printf("  completed routines:   %6d\n", tr.Wakeups)
	fmt.Printf("  missed wake-ups:      %6d (system down)\n", tr.MissedWakeups)
	fmt.Printf("  outages:              %6d\n", tr.Outages)
	fmt.Printf("  recorder energy:      %v\n", tr.RecorderEnergy)
	fmt.Printf("  monitor energy:       %v\n", tr.MonitorEnergy)
	fmt.Printf("  harvested energy:     %v\n", tr.HarvestedEnergy)

	if gaps := tr.RecorderPower.Gaps(2 * time.Hour); len(gaps) > 0 {
		fmt.Printf("\n  night gaps (recorder down > 2 h):\n")
		for _, g := range gaps {
			fmt.Printf("    %s -> %s (%v)\n",
				g.Start.Format("Jan 02 15:04"), g.End.Format("Jan 02 15:04"),
				g.End.Sub(g.Start).Round(time.Minute))
		}
	}

	if st, en := tr.InsideTemp.Span(); !st.IsZero() {
		var sum float64
		for _, p := range tr.InsideTemp.Points() {
			sum += p.V
		}
		fmt.Printf("\n  inside temperature: mean %.1f C over %s..%s\n",
			sum/float64(tr.InsideTemp.Len()),
			st.Format("Jan 02"), en.Format("Jan 02"))
	}

	if *csvPath != "" {
		err := writeFile(*csvPath, func(f *os.File) error {
			return timeseries.WriteCSV(f, tr.RecorderPower, tr.PanelPower, tr.BatterySoC,
				tr.InsideTemp, tr.InsideHumidity, tr.OutsideTemp, tr.OutsideHumidity)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  trace written to %s\n", *csvPath)
	}

	if *tracePath != "" {
		err := writeFile(*tracePath, func(f *os.File) error {
			return cfg.Tracer.WriteJSON(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  %d trace events written to %s (open at ui.perfetto.dev)\n",
			cfg.Tracer.Len(), *tracePath)
	}

	if *metricsCSV != "" {
		err := writeFile(*metricsCSV, func(f *os.File) error {
			return report.WriteMetricsCSV(f, cfg.Metrics.Snapshot())
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  metrics written to %s\n", *metricsCSV)
	}

	if *metrics {
		fmt.Printf("\nmetrics:\n")
		if err := cfg.Metrics.Snapshot().WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
	}
}

// writeFile creates path, runs write, and closes the file, reporting
// the first error — including the close error, which is where a full
// disk or failing flush would otherwise vanish silently.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
