// Command hivetrace runs the deployed-hive simulation of Figure 2: a
// multi-day discrete-event trace of one smart beehive (solar panel,
// battery, weather, colony, duty-cycled recorder), printed as a summary
// and optionally exported as CSV for plotting, a Chrome trace_event
// timeline for Perfetto, a metrics snapshot, and an energy ledger.
//
// Usage:
//
//	hivetrace [-days 7] [-wake 10m] [-site cachan|lyon] [-csv out.csv]
//	          [-trace out.json] [-trace-events] [-metrics]
//	          [-metrics-csv out.csv] [-metrics-json out.json]
//	          [-ledger out.jsonl] [-flight N]
//	          [-empty] [-no-brownout] [-faults plan.json]
//	          [-slo spec.json] [-replicas N] [-workers N]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -faults the run injects the deterministic fault plan — link
// outages and packet loss on the uplink (with retry/backoff and a
// buffer-and-drain upload queue), node crash windows, battery
// brownouts, sensor dropouts — and the summary grows a fault section
// (see docs/FAULTS.md). The plan's schedule is derived from its own
// seed and the virtual clock, so faulted runs are as reproducible as
// clean ones.
//
// With -replicas N the command runs an N-replica ensemble (each replica
// on a seed derived from -seed) fanned across -workers goroutines and
// prints per-replica summaries with ensemble statistics; exports are
// single-run features and cannot be combined with it.
//
// Traces, metrics and the ledger are keyed by the virtual simulation
// clock, so two runs with the same seed produce byte-identical exports
// (see docs/OBSERVABILITY.md). With -ledger the full ledger is written
// as JSONL and audited for energy conservation; with -flight N only the
// last N entries are retained and dumped to stderr when the battery's
// protection circuit trips (a flight recorder for debugging brownouts).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"beesim/internal/deployment"
	"beesim/internal/faults"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/parallel"
	"beesim/internal/prof"
	"beesim/internal/report"
	"beesim/internal/slo"
	"beesim/internal/solar"
	"beesim/internal/stats"
	"beesim/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "hivetrace:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks bad invocations (exit 2, like flag parse errors)
// as opposed to runtime failures (exit 1).
type usageError string

func (e usageError) Error() string { return string(e) }

func run(args []string) (err error) {
	fs := flag.NewFlagSet("hivetrace", flag.ContinueOnError)
	days := fs.Int("days", 7, "days to simulate")
	wake := fs.Duration("wake", 10*time.Minute, "recorder wake-up period")
	site := fs.String("site", "cachan", "deployment site: cachan or lyon")
	csvPath := fs.String("csv", "", "write the trace series to this CSV file")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
	traceEvents := fs.Bool("trace-events", false, "include every DES engine event in the trace (verbose)")
	metrics := fs.Bool("metrics", false, "print the metrics snapshot after the summary")
	metricsCSV := fs.String("metrics-csv", "", "write the metrics snapshot to this CSV file")
	metricsJSON := fs.String("metrics-json", "", "write the metrics snapshot to this JSON file (exemplars included; feeds hivereport trace -metrics)")
	ledgerPath := fs.String("ledger", "", "write the energy ledger to this JSONL file and audit it")
	flight := fs.Int("flight", 0, "flight-recorder mode: retain only the last N ledger entries, dump to stderr on battery cutoff")
	empty := fs.Bool("empty", false, "simulate an empty hive (no colony yet)")
	noBrownout := fs.Bool("no-brownout", false, "disable the night bus brownout")
	faultsPath := fs.String("faults", "", "inject the deterministic fault plan from this JSON file")
	sloPath := fs.String("slo", "", "evaluate the SLO spec from this JSON file after the run (exit nonzero on breach)")
	seed := fs.Uint64("seed", 1, "random seed")
	replicas := fs.Int("replicas", 0, "run an N-replica ensemble (seeds derived per replica) instead of a single trace")
	workers := fs.Int("workers", 0, "worker goroutines for parallel evaluation (0 = all CPUs, 1 = serial)")
	profiler := prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError(err.Error())
	}
	parallel.SetDefault(*workers)
	if err := profiler.Start(); err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, profiler.Stop())
	}()

	cfg := deployment.DefaultConfig()
	cfg.Days = *days
	cfg.WakePeriod = *wake
	cfg.Seed = *seed
	cfg.NightBrownout = !*noBrownout
	switch *site {
	case "cachan":
		cfg.Location = solar.Cachan
	case "lyon":
		cfg.Location = solar.Lyon
	default:
		return usageError(fmt.Sprintf("unknown site %q", *site))
	}
	if *empty {
		cfg.Colony.Population = 0
	}
	if *faultsPath != "" {
		plan, err := faults.LoadPlan(*faultsPath)
		if err != nil {
			return err
		}
		cfg.Faults = &plan
	}
	var spec slo.Spec
	if *sloPath != "" {
		if *flight > 0 {
			return usageError("-slo needs the full ledger; it cannot be combined with the -flight ring")
		}
		spec, err = slo.LoadSpec(*sloPath)
		if err != nil {
			return err
		}
	}
	if *replicas > 0 {
		if *metrics || *metricsCSV != "" || *metricsJSON != "" || *tracePath != "" || *ledgerPath != "" || *csvPath != "" || *flight > 0 || *sloPath != "" {
			return usageError("-replicas is a summary ensemble; it cannot be combined with -csv, -trace, -metrics, -metrics-csv, -metrics-json, -ledger, -flight or -slo")
		}
		return runEnsemble(cfg, *replicas)
	}
	if *metrics || *metricsCSV != "" || *metricsJSON != "" || *sloPath != "" {
		// -slo needs the metrics registry armed even when the snapshot
		// is not otherwise printed: latency objectives read histograms.
		cfg.Metrics = obs.NewRegistry()
	}
	if *tracePath != "" {
		cfg.Tracer = obs.NewTracer(cfg.Start)
		cfg.TraceEngineEvents = *traceEvents
	}
	switch {
	case *flight > 0:
		lg, err := ledger.NewRing(*flight)
		if err != nil {
			return err
		}
		lg.AutoDump(os.Stderr)
		cfg.Ledger = lg
	case *ledgerPath != "" || *sloPath != "":
		// -slo also needs the full ledger: energy objectives sum its
		// consume entries.
		cfg.Ledger = ledger.New()
	}

	tr, err := deployment.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("hive trace: %s, %d day(s), wake every %v\n\n", cfg.Location.Name, cfg.Days, cfg.WakePeriod)
	fmt.Printf("  completed routines:   %6d\n", tr.Wakeups)
	fmt.Printf("  missed wake-ups:      %6d (system down)\n", tr.MissedWakeups)
	fmt.Printf("  outages:              %6d\n", tr.Outages)
	fmt.Printf("  recorder energy:      %v\n", tr.RecorderEnergy)
	fmt.Printf("  monitor energy:       %v\n", tr.MonitorEnergy)
	fmt.Printf("  harvested energy:     %v\n", tr.HarvestedEnergy)

	if cfg.Faults != nil {
		fmt.Printf("\n  faults (plan seed %d):\n", cfg.Faults.Seed)
		fmt.Printf("    upload retries:     %6d (%v radio energy)\n", tr.UploadRetries, tr.RetryEnergy)
		fmt.Printf("    failed uploads:     %6d\n", tr.FailedUploads)
		fmt.Printf("    flushed from queue: %6d\n", tr.FlushedUploads)
		fmt.Printf("    still buffered:     %6d\n", tr.BufferedUploads)
		fmt.Printf("    dropped uploads:    %6d\n", tr.DroppedUploads)
		fmt.Printf("    sensor dropouts:    %6d\n", tr.SensorDropouts)
		fmt.Printf("    battery brownouts:  %6d\n", tr.Brownouts)
	}

	if gaps := tr.RecorderPower.Gaps(2 * time.Hour); len(gaps) > 0 {
		fmt.Printf("\n  night gaps (recorder down > 2 h):\n")
		for _, g := range gaps {
			fmt.Printf("    %s -> %s (%v)\n",
				g.Start.Format("Jan 02 15:04"), g.End.Format("Jan 02 15:04"),
				g.End.Sub(g.Start).Round(time.Minute))
		}
	}

	if st, en := tr.InsideTemp.Span(); !st.IsZero() {
		var sum float64
		for _, p := range tr.InsideTemp.Points() {
			sum += p.V
		}
		fmt.Printf("\n  inside temperature: mean %.1f C over %s..%s\n",
			sum/float64(tr.InsideTemp.Len()),
			st.Format("Jan 02"), en.Format("Jan 02"))
	}

	if *csvPath != "" {
		err := writeFile(*csvPath, func(f *os.File) error {
			return timeseries.WriteCSV(f, tr.RecorderPower, tr.PanelPower, tr.BatterySoC,
				tr.InsideTemp, tr.InsideHumidity, tr.OutsideTemp, tr.OutsideHumidity)
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n  trace written to %s\n", *csvPath)
	}

	if *tracePath != "" {
		err := writeFile(*tracePath, func(f *os.File) error {
			return cfg.Tracer.WriteJSON(f)
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n  %d trace events written to %s (open at ui.perfetto.dev)\n",
			cfg.Tracer.Len(), *tracePath)
	}

	if *ledgerPath != "" {
		err := writeFile(*ledgerPath, func(f *os.File) error {
			return cfg.Ledger.WriteJSONL(f)
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n  %d ledger entries written to %s (inspect with hivereport)\n",
			cfg.Ledger.Len(), *ledgerPath)
	}

	if cfg.Ledger != nil {
		if *flight > 0 {
			// A ring sees only a window of the flows, so a conservation
			// audit over it is not meaningful; report retention instead.
			fmt.Printf("\n  flight recorder: %d of %d entries retained, %d trip(s)\n",
				cfg.Ledger.Len(), cfg.Ledger.Total(), cfg.Ledger.Trips())
		} else {
			rep, tripErr := ledger.AuditTrip(cfg.Ledger, ledger.DefaultTolerance())
			if tripErr != nil {
				return tripErr
			}
			fmt.Printf("\n  %s\n", rep.String())
			for _, v := range rep.Violations {
				fmt.Printf("    %s\n", v.String())
			}
			if !rep.OK() {
				return fmt.Errorf("conservation audit failed with %d violation(s)", len(rep.Violations))
			}
		}
	}

	if *metricsCSV != "" {
		err := writeFile(*metricsCSV, func(f *os.File) error {
			return report.WriteMetricsCSV(f, cfg.Metrics.Snapshot())
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n  metrics written to %s\n", *metricsCSV)
	}

	if *metricsJSON != "" {
		err := writeFile(*metricsJSON, func(f *os.File) error {
			return cfg.Metrics.Snapshot().WriteJSON(f)
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n  metrics written to %s\n", *metricsJSON)
	}

	if *metrics {
		fmt.Printf("\nmetrics:\n")
		if err := cfg.Metrics.Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}

	if *sloPath != "" {
		rep, err := slo.Evaluate(spec, slo.Input{
			Snapshot: cfg.Metrics.Snapshot(),
			Entries:  cfg.Ledger.Entries(),
			Window:   time.Duration(cfg.Days) * 24 * time.Hour,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nslo check (%s):\n", *sloPath)
		if err := rep.WriteText(os.Stdout); err != nil {
			return err
		}
		if !rep.Pass() {
			return fmt.Errorf("SLO %q breached: %d of %d objectives failing",
				spec.Name, rep.Breaches(), len(rep.Results))
		}
	}
	return nil
}

// runEnsemble fans n deployment replicas (per-replica derived seeds)
// across the worker pool and prints a per-replica summary table plus
// ensemble mean and standard deviation — the quick answer to "how much
// of this trace is seed luck".
func runEnsemble(cfg deployment.Config, n int) error {
	traces, err := deployment.RunReplicas(cfg, n, 0)
	if err != nil {
		return err
	}
	fmt.Printf("hive ensemble: %s, %d day(s), wake every %v, %d replica(s), %d worker(s)\n\n",
		cfg.Location.Name, cfg.Days, cfg.WakePeriod, n, parallel.Default())
	t := report.NewTable("", "Replica", "Routines", "Missed", "Outages",
		"Recorder J", "Harvest J")
	var routines, missed, outages, recorder, harvest stats.Online
	for i, tr := range traces {
		t.MustAddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", tr.Wakeups),
			fmt.Sprintf("%d", tr.MissedWakeups),
			fmt.Sprintf("%d", tr.Outages),
			fmt.Sprintf("%.0f", float64(tr.RecorderEnergy)),
			fmt.Sprintf("%.0f", float64(tr.HarvestedEnergy)))
		routines.Add(float64(tr.Wakeups))
		missed.Add(float64(tr.MissedWakeups))
		outages.Add(float64(tr.Outages))
		recorder.Add(float64(tr.RecorderEnergy))
		harvest.Add(float64(tr.HarvestedEnergy))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n  routines:  %.1f +/- %.1f\n", routines.Mean(), routines.StdDev())
	fmt.Printf("  missed:    %.1f +/- %.1f\n", missed.Mean(), missed.StdDev())
	fmt.Printf("  outages:   %.1f +/- %.1f\n", outages.Mean(), outages.StdDev())
	fmt.Printf("  recorder:  %.0f J +/- %.0f J\n", recorder.Mean(), recorder.StdDev())
	fmt.Printf("  harvest:   %.0f J +/- %.0f J\n", harvest.Mean(), harvest.StdDev())
	return nil
}

// writeFile creates path, runs write, and closes the file, reporting
// the first error — including the close error, which is where a full
// disk or failing flush would otherwise vanish silently.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
