// Command hivetrace runs the deployed-hive simulation of Figure 2: a
// multi-day discrete-event trace of one smart beehive (solar panel,
// battery, weather, colony, duty-cycled recorder), printed as a summary
// and optionally exported as CSV for plotting.
//
// Usage:
//
//	hivetrace [-days 7] [-wake 10m] [-site cachan|lyon] [-csv out.csv]
//	          [-empty] [-no-brownout]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"beesim/internal/deployment"
	"beesim/internal/solar"
	"beesim/internal/timeseries"
)

func main() {
	days := flag.Int("days", 7, "days to simulate")
	wake := flag.Duration("wake", 10*time.Minute, "recorder wake-up period")
	site := flag.String("site", "cachan", "deployment site: cachan or lyon")
	csvPath := flag.String("csv", "", "write the trace series to this CSV file")
	empty := flag.Bool("empty", false, "simulate an empty hive (no colony yet)")
	noBrownout := flag.Bool("no-brownout", false, "disable the night bus brownout")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := deployment.DefaultConfig()
	cfg.Days = *days
	cfg.WakePeriod = *wake
	cfg.Seed = *seed
	cfg.NightBrownout = !*noBrownout
	switch *site {
	case "cachan":
		cfg.Location = solar.Cachan
	case "lyon":
		cfg.Location = solar.Lyon
	default:
		fmt.Fprintf(os.Stderr, "hivetrace: unknown site %q\n", *site)
		os.Exit(2)
	}
	if *empty {
		cfg.Colony.Population = 0
	}

	tr, err := deployment.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivetrace:", err)
		os.Exit(1)
	}

	fmt.Printf("hive trace: %s, %d day(s), wake every %v\n\n", cfg.Location.Name, cfg.Days, cfg.WakePeriod)
	fmt.Printf("  completed routines:   %6d\n", tr.Wakeups)
	fmt.Printf("  missed wake-ups:      %6d (system down)\n", tr.MissedWakeups)
	fmt.Printf("  outages:              %6d\n", tr.Outages)
	fmt.Printf("  recorder energy:      %v\n", tr.RecorderEnergy)
	fmt.Printf("  monitor energy:       %v\n", tr.MonitorEnergy)
	fmt.Printf("  harvested energy:     %v\n", tr.HarvestedEnergy)

	if gaps := tr.RecorderPower.Gaps(2 * time.Hour); len(gaps) > 0 {
		fmt.Printf("\n  night gaps (recorder down > 2 h):\n")
		for _, g := range gaps {
			fmt.Printf("    %s -> %s (%v)\n",
				g.Start.Format("Jan 02 15:04"), g.End.Format("Jan 02 15:04"),
				g.End.Sub(g.Start).Round(time.Minute))
		}
	}

	if st, en := tr.InsideTemp.Span(); !st.IsZero() {
		var sum float64
		for _, p := range tr.InsideTemp.Points() {
			sum += p.V
		}
		fmt.Printf("\n  inside temperature: mean %.1f C over %s..%s\n",
			sum/float64(tr.InsideTemp.Len()),
			st.Format("Jan 02"), en.Format("Jan 02"))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		err = timeseries.WriteCSV(f, tr.RecorderPower, tr.PanelPower, tr.BatterySoC,
			tr.InsideTemp, tr.InsideHumidity, tr.OutsideTemp, tr.OutsideHumidity)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivetrace:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  trace written to %s\n", *csvPath)
	}
}
