// Command benchdiff compares a fresh `go test -json` benchmark run
// against one or more committed baselines and exits nonzero on
// regression. It is the engine behind `make bench-diff`:
//
//	go test -json -run xxx -bench ... . > current.json
//	benchdiff -baseline BENCH_obs.json -baseline BENCH_parallel.json current.json
//
// Every baseline benchmark must appear in the current run and stay
// within the ns/op and allocs/op thresholds; benchmarks only present
// in the current run are ignored until the next `make bench-baseline`.
// Pass "-" as the current file to read from stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"beesim/internal/benchdiff"
)

// baselines collects repeated -baseline flags.
type baselines []string

func (b *baselines) String() string { return fmt.Sprint([]string(*b)) }

func (b *baselines) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	var basePaths baselines
	fs.Var(&basePaths, "baseline", "baseline go test -json file (repeatable)")
	def := benchdiff.DefaultThresholds()
	nsFrac := fs.Float64("ns-frac", def.NsFrac, "allowed fractional ns/op growth")
	allocFrac := fs.Float64("alloc-frac", def.AllocFrac, "allowed fractional allocs/op growth")
	allocSlack := fs.Float64("alloc-slack", def.AllocSlack, "absolute allocs/op slack on top of -alloc-frac")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(basePaths) == 0 || fs.NArg() != 1 {
		return fmt.Errorf("usage: benchdiff -baseline base.json [-baseline more.json] current.json")
	}

	baseline := map[string]benchdiff.Result{}
	for _, path := range basePaths {
		res, err := benchdiff.ParseFile(path)
		if err != nil {
			return err
		}
		benchdiff.MergeInto(baseline, res)
	}
	var current map[string]benchdiff.Result
	var err error
	if cur := fs.Arg(0); cur == "-" {
		current, err = benchdiff.Parse(os.Stdin)
	} else {
		current, err = benchdiff.ParseFile(cur)
	}
	if err != nil {
		return err
	}

	rep := benchdiff.Compare(baseline, current, benchdiff.Thresholds{
		NsFrac: *nsFrac, AllocFrac: *allocFrac, AllocSlack: *allocSlack,
	})
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if !rep.Pass() {
		return fmt.Errorf("%d of %d benchmarks regressed past thresholds", rep.Failures(), len(rep.Rows))
	}
	fmt.Printf("all %d benchmarks within thresholds\n", len(rep.Rows))
	return nil
}
