// Command hivenet runs the networked realization of the paper's
// architecture: a cloud queen-detection service and smart-beehive edge
// agents speaking the beesim wire protocol over TCP.
//
// Usage:
//
//	hivenet serve [-addr :7700] [-cap 10] [-slots 18] [-http addr] [-obs]
//	hivenet agent -addr host:7700 [-hive cachan-1] [-cycles 3]
//	              [-placement edge|cloud] [-state present|lost|piping]
//	              [-trace out.json]
//
// With -obs the server keeps a metrics registry (sessions, reports,
// uploads, slot allocations, burst energy, HTTP request durations) and
// the dashboard exposes snapshot endpoints at /metrics (text) and
// /api/metrics (JSON). It also arms a tracer: upload frames carrying a
// W3C traceparent get a joined server handler span, fetchable as a
// Chrome trace at /api/trace/{id}, with the slowest uploads ranked at
// /api/slowest. With -ledger it also keeps an energy ledger of every
// upload's receive/execute burst, exported at /api/ledger as JSONL for
// hivereport.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"beesim/internal/hive"
	"beesim/internal/hivenet"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/slo"
	"beesim/internal/routine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "agent":
		err = agent(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hivenet: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivenet:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hivenet <serve|agent> [flags]`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7700", "listen address")
	httpAddr := fs.String("http", "", "dashboard listen address (e.g. 127.0.0.1:7780); empty disables")
	maxPar := fs.Int("cap", 10, "clients allowed in parallel per time slot")
	slots := fs.Int("slots", 18, "time slots per cycle")
	corpus := fs.Int("corpus", 80, "training corpus size")
	archive := fs.String("archive", "", "persist reports and verdicts to this file")
	withObs := fs.Bool("obs", false, "keep a metrics registry and expose /metrics on the dashboard")
	withLedger := fs.Bool("ledger", false, "keep an energy ledger and expose /api/ledger on the dashboard")
	sloPath := fs.String("slo", "", "SLO spec JSON; expose live evaluation at /api/slo (implies -obs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hivenet.DefaultServerConfig()
	cfg.MaxParallel = *maxPar
	cfg.Slots = *slots
	cfg.TrainCorpus = *corpus
	cfg.ArchivePath = *archive
	cfg.Logf = log.Printf
	var spec slo.Spec
	if *sloPath != "" {
		var err error
		if spec, err = slo.LoadSpec(*sloPath); err != nil {
			return err
		}
	}
	if *withObs || *sloPath != "" {
		cfg.Metrics = obs.NewRegistry()
		// Span-tagged handler spans join agent traceparents, so uploads
		// can be fetched as Chrome traces at /api/trace/{id} and the
		// slowest uploads ranked at /api/slowest.
		cfg.Tracer = obs.NewTracer(time.Now().UTC()) //beelint:allow walltime live server anchors its trace epoch to real time; simulations construct tracers from virtual epochs
	}
	if *withLedger {
		cfg.Ledger = ledger.New()
	}
	s, err := hivenet.NewServer(*addr, cfg)
	if err != nil {
		return err
	}
	log.Printf("cloud service on %s (detector accuracy %.1f%%, %d slots x %d clients)",
		s.Addr(), 100*s.DetectorAccuracy(), *slots, *maxPar)
	if *httpAddr != "" {
		dash := hivenet.NewDashboard(s)
		if *sloPath != "" {
			dash.SetSLO(spec)
		}
		go func() {
			log.Printf("dashboard on http://%s/", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, dash); err != nil {
				log.Printf("dashboard: %v", err)
			}
		}()
	}
	return s.Serve()
}

func agent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7700", "server address")
	hiveID := fs.String("hive", "cachan-1", "hive identifier")
	cycles := fs.Int("cycles", 3, "cycles to run")
	placement := fs.String("placement", "cloud", "edge or cloud")
	state := fs.String("state", "present", "colony truth: present, lost or piping")
	seed := fs.Uint64("seed", 1, "random seed")
	tracePath := fs.String("trace", "", "trace the cycles and write a Chrome trace JSON to this file; uploads carry a traceparent the server joins")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := hivenet.DefaultAgentConfig(*hiveID)
	cfg.Seed = *seed
	switch *placement {
	case "edge":
		cfg.Placement = routine.EdgeOnly
	case "cloud":
		cfg.Placement = routine.EdgeCloud
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	var q hive.QueenState
	switch *state {
	case "present":
		q = hive.QueenPresent
	case "lost":
		q = hive.QueenLost
	case "piping":
		q = hive.QueenPiping
	default:
		return fmt.Errorf("unknown state %q", *state)
	}

	var tr *obs.Tracer
	if *tracePath != "" {
		tr = obs.NewTracer(time.Now().UTC()) //beelint:allow walltime live agent anchors its trace epoch to real time; simulated agents trace on virtual epochs
		cfg.Tracer = tr
	}
	a, err := hivenet.Dial(*addr, cfg)
	if err != nil {
		return err
	}
	defer a.Close()
	fmt.Printf("hive %s connected, time slot %d\n", *hiveID, a.Slot())
	for i := 0; i < *cycles; i++ {
		res, err := a.RunCycle(q, 0.7, time.Now().UTC()) //beelint:allow walltime live agent CLI stamps real reports; simulated agents pass virtual time here
		if err != nil {
			return err
		}
		verdict := "queen present"
		if !res.QueenPresent {
			verdict = "QUEENLESS"
		}
		fmt.Printf("cycle %d: %s (computed at %s, confidence %.2f)\n",
			i+1, verdict, res.ComputedAt, res.Confidence)
	}
	fmt.Printf("edge energy spent (active tasks): %v over %d cycles\n",
		a.EdgeEnergy(), a.Cycles())
	if tr != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (last trace id %s)\n", *tracePath, a.LastTraceID())
	}
	return nil
}
