// Command beelint runs the beesim determinism & unit-safety analyzer
// suite (internal/lint) over the module and reports findings.
//
// Usage:
//
//	beelint [-C dir] [-format text|json|sarif] [-list] [-local] [-fix]
//	        [-baseline file] [-write-baseline] [path prefixes...]
//
// With no arguments every package in the module is checked, including
// the module-wide interprocedural pass (disable with -local).
// Positional arguments restrict reporting to packages whose
// module-relative path has one of the given prefixes ("internal/des",
// "cmd", ...); the conventional "./..." means everything and is
// accepted for Makefile ergonomics.
//
// -fix applies the mechanical rewrites attached to fixable findings
// (sorted map iteration, compensated summation, seeded-rng
// substitution) and reports only what remains. -baseline ratchets: the
// build fails only on findings beyond the checked-in inventory, and
// stale inventory entries are warned about so the baseline only
// shrinks; -write-baseline regenerates it.
//
// Exit status: 0 when clean (or nothing beyond the baseline), 1 when
// findings were reported, 2 on usage or load errors. Output order is
// byte-stable across runs — text, -format json and -format sarif — so
// CI diffs are meaningful.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"beesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("beelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "module root (default: nearest go.mod above the working directory)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (alias for -format json)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	list := fs.Bool("list", false, "list the analyzers and exit")
	local := fs.Bool("local", false, "file-local analysis only (skip the interprocedural pass)")
	fix := fs.Bool("fix", false, "apply mechanical fixes to fixable findings and report the rest")
	baselinePath := fs.String("baseline", "", "ratchet against this baseline file (new findings fail, stale entries warn)")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from the current findings and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: beelint [-C dir] [-format text|json|sarif] [-list] [-local] [-fix] [-baseline file] [-write-baseline] [path prefixes...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *asJSON {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "beelint: unknown format %q\n", *format)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "beelint: -write-baseline requires -baseline")
		return 2
	}

	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
		root, err = lint.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "beelint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "beelint:", err)
		return 2
	}

	prefixes := prefixFilter(fs.Args())
	runner := lint.NewRunner()
	var findings []lint.Finding
	for _, pkg := range pkgs {
		if !prefixes.match(loader.ModulePath, pkg.Path) {
			continue
		}
		findings = append(findings, runner.RunPackage(pkg, loader.Fset)...)
	}
	if !*local {
		// The interprocedural pass always sees the whole module (taint
		// crosses package boundaries); prefixes only filter which
		// findings are reported.
		mod := lint.NewModule(pkgs, loader.Fset, root)
		for _, f := range mod.InterproceduralFindings() {
			if prefixes.matchFile(root, f.File) {
				findings = append(findings, f)
			}
		}
	}

	if *fix {
		fixer := &lint.Fixer{Fset: loader.Fset}
		results, err := fixer.Apply(findings)
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
		fixed := 0
		for _, r := range results {
			if err := os.WriteFile(r.File, r.Content, 0o644); err != nil {
				fmt.Fprintln(stderr, "beelint:", err)
				return 2
			}
			fixed += r.Applied
			if rel, err := filepath.Rel(root, r.File); err == nil {
				fmt.Fprintf(stdout, "beelint: fixed %d issue(s) in %s\n", r.Applied, filepath.ToSlash(rel))
			}
		}
		// Fixed findings are resolved; report what -fix cannot do.
		kept := findings[:0]
		for _, f := range findings {
			if !f.Fixable {
				kept = append(kept, f)
			}
		}
		findings = kept
	}

	// Report module-relative paths: stable regardless of checkout
	// location, and friendlier to read.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	lint.SortFindings(findings)

	if *writeBaseline {
		if err := lint.NewBaseline(findings).Write(*baselinePath); err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "beelint: wrote baseline of %d finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
		fresh, stale := base.Diff(findings)
		for _, e := range stale {
			fmt.Fprintf(stderr, "beelint: baseline entry is stale (debt paid — run -write-baseline): %s %s x%d\n",
				e.File, e.Check, e.Count)
		}
		findings = fresh
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "beelint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// prefixes filters packages by module-relative path prefix.
type prefixes []string

func prefixFilter(args []string) prefixes {
	var ps prefixes
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return nil // "./..." and "." mean the whole module
		}
		ps = append(ps, filepath.ToSlash(a))
	}
	return ps
}

// matchFile filters a finding by its file's module-relative directory,
// used for interprocedural findings (which belong to call sites, not
// to the packages the walk started from).
func (ps prefixes) matchFile(root, file string) bool {
	if len(ps) == 0 {
		return true
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return false
	}
	dir := filepath.ToSlash(filepath.Dir(rel))
	for _, p := range ps {
		if dir == p || strings.HasPrefix(dir, p+"/") {
			return true
		}
	}
	return false
}

func (ps prefixes) match(modPath, pkgPath string) bool {
	if len(ps) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	if rel == "" {
		rel = "."
	}
	for _, p := range ps {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
