// Command beelint runs the beesim determinism & unit-safety analyzer
// suite (internal/lint) over the module and reports findings.
//
// Usage:
//
//	beelint [-C dir] [-json] [-list] [path prefixes...]
//
// With no arguments every package in the module is checked. Positional
// arguments restrict checking to packages whose module-relative path
// has one of the given prefixes ("internal/des", "cmd", ...); the
// conventional "./..." means everything and is accepted for Makefile
// ergonomics.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage
// or load errors. Output order is byte-stable across runs — both the
// text form and -json — so CI diffs are meaningful.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"beesim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("beelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "module root (default: nearest go.mod above the working directory)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: beelint [-C dir] [-json] [-list] [path prefixes...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
		root, err = lint.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "beelint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "beelint:", err)
		return 2
	}

	prefixes := prefixFilter(fs.Args())
	runner := lint.NewRunner()
	var findings []lint.Finding
	for _, pkg := range pkgs {
		if !prefixes.match(loader.ModulePath, pkg.Path) {
			continue
		}
		findings = append(findings, runner.RunPackage(pkg, loader.Fset)...)
	}
	// Report module-relative paths: stable regardless of checkout
	// location, and friendlier to read.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}
	lint.SortFindings(findings)

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "beelint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "beelint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// prefixes filters packages by module-relative path prefix.
type prefixes []string

func prefixFilter(args []string) prefixes {
	var ps prefixes
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return nil // "./..." and "." mean the whole module
		}
		ps = append(ps, filepath.ToSlash(a))
	}
	return ps
}

func (ps prefixes) match(modPath, pkgPath string) bool {
	if len(ps) == 0 {
		return true
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
	if rel == "" {
		rel = "."
	}
	for _, p := range ps {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
