package beesim

// SLO determinism: the observability layer built for SLO gating — the
// per-point histogram snapshots, the merged registry, and the SLO
// reports themselves — must honor the same worker-count contract as
// every other export. A CI gate that flaps with -workers is worse
// than no gate.

import (
	"bytes"
	"testing"
	"time"

	"beesim/internal/experiments"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/report"
	"beesim/internal/slo"
)

// sloSpec is the checked-in example spec, loaded from disk so this
// test also pins the file's validity (the acceptance command is
// `apiarysim avail -slo examples/slo_upload.json`).
func sloSpec(t *testing.T) slo.Spec {
	t.Helper()
	spec, err := slo.LoadSpec("examples/slo_upload.json")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// renderSLOSweep runs a small faulted availability sweep and flattens
// everything the SLO layer observes: each point's histogram snapshot
// JSON, each point's SLO report JSON, and the merged registry's
// metrics CSV.
func renderSLOSweep(t *testing.T, workers int) []byte {
	t.Helper()
	spec := sloSpec(t)
	cfg, err := experiments.DefaultAvailabilityConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Step = 50 // coarse client grid keeps the inner sweeps fast
	cfg.AvailSteps = 3
	cfg.Retry = chaosPlan().RetryOrDefault()
	cfg.Seed = chaosPlan().Seed
	cfg.Workers = workers
	cfg.Metrics = obs.NewRegistry()
	cfg.Ledger = ledger.New()
	pts, err := experiments.AvailabilitySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := cfg.UploadSamples
	if samples <= 0 {
		samples = experiments.DefaultUploadSamples
	}
	var buf bytes.Buffer
	for _, p := range pts {
		if err := p.Obs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		rep, err := slo.Evaluate(spec, slo.Input{
			Snapshot: p.Obs,
			Window:   time.Duration(samples) * experiments.Period,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := report.WriteMetricsCSV(&buf, maskWorkers(cfg.Metrics.Snapshot())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSLOReportsDeterministicAcrossWorkers pins the acceptance
// contract: histogram snapshots and SLO reports are byte-identical at
// workers 1, 2 and 8 across a faulted availability sweep.
func TestSLOReportsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("availability sweep runs many inner sweeps; run without -short")
	}
	want := renderSLOSweep(t, determinismWorkers[0])
	if len(want) == 0 {
		t.Fatal("empty render")
	}
	if !bytes.Contains(want, []byte("netsim_upload_seconds")) {
		t.Fatal("render carries no upload-latency histogram; the SLO gate would be vacuous")
	}
	for _, w := range determinismWorkers[1:] {
		if got := renderSLOSweep(t, w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d SLO observability diverged from workers=1 (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}
