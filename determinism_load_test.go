package beesim

// Byte-determinism for the fleet load layer: the schedule a LoadSpec
// derives and the capacity report the planner renders are pure
// functions of the spec + SLO. These tests render both artifacts from
// the checked-in examples at workers 1, 2 and 8 — and twice at the
// same worker count — and require identical bytes, the same contract
// `hiveload plan` advertises on its stdout.

import (
	"bytes"
	"testing"

	"beesim/internal/loadgen"
	"beesim/internal/slo"
)

func loadFleetSmall(t *testing.T) loadgen.LoadSpec {
	t.Helper()
	spec, err := loadgen.LoadFile("examples/fleet_small.json")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// renderSchedule derives the fleet schedule at a worker count and
// renders it as CSV bytes.
func renderSchedule(t *testing.T, spec loadgen.LoadSpec, workers int) []byte {
	t.Helper()
	evs, err := loadgen.ScheduleParallel(spec, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loadgen.WriteCSV(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadScheduleByteDeterminism(t *testing.T) {
	spec := loadFleetSmall(t)
	base := renderSchedule(t, spec, determinismWorkers[0])
	if len(base) == 0 {
		t.Fatal("empty schedule")
	}
	for _, w := range determinismWorkers[1:] {
		if got := renderSchedule(t, spec, w); !bytes.Equal(base, got) {
			t.Fatalf("schedule bytes diverge at workers=%d", w)
		}
	}
	if again := renderSchedule(t, spec, determinismWorkers[0]); !bytes.Equal(base, again) {
		t.Fatal("schedule bytes diverge across repeated runs")
	}
}

// renderPlan runs the full capacity plan (search + knee sweep) at a
// worker count and renders report + CSV as one byte slice.
func renderPlan(t *testing.T, spec loadgen.LoadSpec, sloSpec slo.Spec, workers int) []byte {
	t.Helper()
	evs, err := loadgen.ScheduleParallel(spec, workers)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Plan(spec, evs, sloSpec, loadgen.PlanOptions{
		MaxServers: 8,
		Workers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteKneeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCapacityPlanByteDeterminism(t *testing.T) {
	spec := loadFleetSmall(t)
	sloSpec, err := slo.LoadSpec("examples/slo_upload.json")
	if err != nil {
		t.Fatal(err)
	}
	base := renderPlan(t, spec, sloSpec, determinismWorkers[0])
	if len(base) == 0 {
		t.Fatal("empty plan report")
	}
	for _, w := range determinismWorkers[1:] {
		if got := renderPlan(t, spec, sloSpec, w); !bytes.Equal(base, got) {
			t.Fatalf("capacity report bytes diverge at workers=%d", w)
		}
	}
	if again := renderPlan(t, spec, sloSpec, determinismWorkers[0]); !bytes.Equal(base, again) {
		t.Fatal("capacity report bytes diverge across repeated runs")
	}
}
