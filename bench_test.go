package beesim

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark regenerates its artifact and reports the
// headline quantity as custom metrics (b.ReportMetric), so
// `go test -bench=. -benchmem` prints the reproduced numbers alongside
// the usual timing columns. EXPERIMENTS.md records paper-vs-measured.

import (
	"math"
	"testing"
	"time"

	"beesim/internal/adaptive"
	"beesim/internal/audio"
	"beesim/internal/core"
	"beesim/internal/des"
	"beesim/internal/dsp"
	"beesim/internal/experiments"
	"beesim/internal/hivenet"
	"beesim/internal/ledger"
	"beesim/internal/obs"
	"beesim/internal/optimizer"
	"beesim/internal/power"
	"beesim/internal/queendetect"
	"beesim/internal/routine"
	"beesim/internal/services"
	"beesim/internal/solar"
	"beesim/internal/surrogate"
	"beesim/internal/swarm"
	"beesim/internal/vision"
)

// BenchmarkTableI regenerates Table I (edge scenarios); metric: the CNN
// scenario's total joules per 5-minute cycle (paper: 367.5 J).
func BenchmarkTableI(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		total = float64(tables[1].Cycle.EdgeEnergy())
	}
	b.ReportMetric(total, "J/cycle")
}

// BenchmarkTableII regenerates Table II (edge+cloud); metrics: edge and
// cloud totals (paper: 322.0 J and 13 806 J for the CNN).
func BenchmarkTableII(b *testing.B) {
	var edge, cloud float64
	for i := 0; i < b.N; i++ {
		tables, err := experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
		edge = float64(tables[1].Cycle.EdgeEnergy())
		cloud = float64(tables[1].Cycle.CloudEnergy())
	}
	b.ReportMetric(edge, "edgeJ/cycle")
	b.ReportMetric(cloud, "cloudJ/cycle")
}

// BenchmarkFigure2 runs a 2-day deployment trace (the full figure uses
// 7 days); metric: completed routines per day (paper cadence: 10-minute
// wake-ups during daylight).
func BenchmarkFigure2(b *testing.B) {
	var wakeups float64
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Figure2Custom(2, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		wakeups = float64(tr.Wakeups) / 2
	}
	b.ReportMetric(wakeups, "routines/day")
}

// BenchmarkFigure3 regenerates the power-vs-period curve; metric: the
// 5-minute point (paper: 1.19 W).
func BenchmarkFigure3(b *testing.B) {
	var at5 float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure3()
		at5 = float64(pts[0].AvgPower)
	}
	b.ReportMetric(at5, "W@5min")
}

// BenchmarkRoutineStats replays the 319-routine campaign of Section IV;
// metrics: mean duration (paper: 89 s) and sigma (paper: 3.5 s).
func BenchmarkRoutineStats(b *testing.B) {
	var mean, sd float64
	for i := 0; i < b.N; i++ {
		st, err := experiments.RoutineStats(319)
		if err != nil {
			b.Fatal(err)
		}
		mean = st.MeanDuration.Seconds()
		sd = st.SDDuration.Seconds()
	}
	b.ReportMetric(mean, "s/routine")
	b.ReportMetric(sd, "sigma_s")
}

// BenchmarkFigure5 trains the CNN at a reduced set of input sizes on a
// small corpus (the full figure uses eight sizes and a larger corpus);
// metrics: accuracy at the largest size and the energy ratio between the
// sizes (quadratic scaling doubles the side -> ~4x variable energy).
func BenchmarkFigure5(b *testing.B) {
	cfg := experiments.DefaultFigure5()
	cfg.Sizes = []int{20, 40}
	cfg.CorpusSize = 48
	cfg.ClipSeconds = 1
	cfg.Epochs = 6
	var acc, ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = pts[len(pts)-1].Accuracy
		ratio = pts[1].FLOPs / pts[0].FLOPs
	}
	b.ReportMetric(acc, "accuracy")
	b.ReportMetric(ratio, "flops_ratio_40_20")
}

// BenchmarkFigure6 sweeps 10-400 clients at capacity 10; metric: the
// fully subscribed server's per-client cost (paper: converges to 116 J).
func BenchmarkFigure6(b *testing.B) {
	var floor float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		floor = float64(pts[180-10].EdgeCloud.PerClientServer())
	}
	b.ReportMetric(floor, "J/client@full")
}

// BenchmarkFigure7 sweeps 100-2000 clients at capacity 35; metrics: the
// crossover milestones (paper: 406 / 12.5 J @ 630 / 803).
func BenchmarkFigure7(b *testing.B) {
	var m experiments.Figure7Milestones
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure7(35)
		if err != nil {
			b.Fatal(err)
		}
		m = experiments.MilestonesOf(pts)
	}
	b.ReportMetric(float64(m.FirstCrossover), "crossover_clients")
	b.ReportMetric(float64(m.PeakAdvantage), "peak_J")
	b.ReportMetric(float64(m.PermanentFrom), "permanent_clients")
}

// BenchmarkFigure8 runs the four loss-variant sweeps; metric: the loss-A
// full-server floor (paper: ~186 J/client).
func BenchmarkFigure8(b *testing.B) {
	var floorA float64
	for i := 0; i < b.N; i++ {
		for _, v := range []experiments.LossVariant{
			experiments.LossA, experiments.LossB, experiments.LossC, experiments.LossAll,
		} {
			pts, err := experiments.Figure8(v)
			if err != nil {
				b.Fatal(err)
			}
			if v == experiments.LossA {
				floorA = float64(pts[180-10].EdgeCloud.PerClientServer())
			}
		}
	}
	b.ReportMetric(floorA, "lossA_J/client")
}

// BenchmarkFigure9 runs the all-losses cap-35 sweep; metric: the number
// of fleet sizes where the edge+cloud scenario still wins (the paper's
// green intervals).
func BenchmarkFigure9(b *testing.B) {
	var wins float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		wins = 0
		for _, p := range pts {
			if p.Diff() > 0 {
				wins++
			}
		}
	}
	b.ReportMetric(wins, "green_points")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------

// BenchmarkAblationFillPolicy contrasts the paper's sequential slot
// filling with balanced filling under the saturation loss; metric: the
// balanced policy's energy saving.
func BenchmarkAblationFillPolicy(b *testing.B) {
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.DefaultServer(10)
	l := core.PaperLosses(true, false, false)
	var saving float64
	for i := 0; i < b.N; i++ {
		seq, err := core.Allocate(90, spec, svc, l, core.FillSequential)
		if err != nil {
			b.Fatal(err)
		}
		bal, err := core.Allocate(90, spec, svc, l, core.FillBalanced)
		if err != nil {
			b.Fatal(err)
		}
		saving = float64(seq.TotalServerEnergy() - bal.TotalServerEnergy())
	}
	b.ReportMetric(saving, "J_saved")
}

// BenchmarkAblationSlotCapacity measures the viability tipping point
// (paper: 26 clients per slot).
func BenchmarkAblationSlotCapacity(b *testing.B) {
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	var tipping float64
	for i := 0; i < b.N; i++ {
		min, err := core.MinParallelForViability(svc, 44.6, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		tipping = float64(min)
	}
	b.ReportMetric(tipping, "clients/slot")
}

// BenchmarkAblationLosses compares the per-client cost of a full server
// under each loss model (capacity 10, 180 clients).
func BenchmarkAblationLosses(b *testing.B) {
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.DefaultServer(10)
	var base, withA float64
	for i := 0; i < b.N; i++ {
		none, err := core.SimulateEdgeCloud(180, spec, svc, core.Losses{}, core.FillSequential, nil)
		if err != nil {
			b.Fatal(err)
		}
		lossA, err := core.SimulateEdgeCloud(180, spec, svc,
			core.PaperLosses(true, false, false), core.FillSequential, nil)
		if err != nil {
			b.Fatal(err)
		}
		base = float64(none.PerClientServer())
		withA = float64(lossA.PerClientServer())
	}
	b.ReportMetric(base, "J_no_loss")
	b.ReportMetric(withA, "J_lossA")
}

// BenchmarkAblationCNNSize measures the FLOPs-vs-size frontier of the
// reference network (quadratic in the input side).
func BenchmarkAblationCNNSize(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		f := func(size int) float64 {
			e, _ := power.DefaultEdgeInference().Cost(6000 * float64(size) * float64(size))
			return float64(e)
		}
		ratio = f(200) / f(100)
	}
	b.ReportMetric(ratio, "energy_ratio_200_100")
}

// BenchmarkAblationModelChoice contrasts SVM and CNN edge cycles
// (paper: only 1.2 J apart).
func BenchmarkAblationModelChoice(b *testing.B) {
	pi, cloud := power.DefaultPi3B(), power.DefaultCloud()
	var diff float64
	for i := 0; i < b.N; i++ {
		svm, err := routine.Build(pi, cloud, routine.Spec{
			Period: 5 * time.Minute, Model: routine.SVM, Placement: routine.EdgeOnly})
		if err != nil {
			b.Fatal(err)
		}
		cnn, err := routine.Build(pi, cloud, routine.Spec{
			Period: 5 * time.Minute, Model: routine.CNN, Placement: routine.EdgeOnly})
		if err != nil {
			b.Fatal(err)
		}
		diff = float64(cnn.EdgeEnergy() - svm.EdgeEnergy())
	}
	b.ReportMetric(diff, "J_cnn_minus_svm")
}

// ---------------------------------------------------------------------
// Component micro-benchmarks (the substrate hot paths)
// ---------------------------------------------------------------------

// BenchmarkMelSpectrogram measures the paper's feature front end on one
// second of audio.
func BenchmarkMelSpectrogram(b *testing.B) {
	synth, err := audio.NewSynth(audio.Config{SampleRate: 22050, Seconds: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	clip := synth.Clip(0, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.MelSpectrogram(clip, dsp.PaperSTFT(), 128, 22050); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVMPredict measures one classical inference.
func BenchmarkSVMPredict(b *testing.B) {
	corpus, err := audio.Corpus(audio.Config{SampleRate: 22050, Seconds: 1, Seed: 1}, 40)
	if err != nil {
		b.Fatal(err)
	}
	res, err := queendetect.TrainSVM(corpus, 22050, 1)
	if err != nil {
		b.Fatal(err)
	}
	clip := corpus[0].Samples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Predict(clip, 22050); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocator measures placing 2000 clients onto servers.
func BenchmarkAllocator(b *testing.B) {
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	spec := core.DefaultServer(35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Allocate(2000, spec, svc, core.Losses{}, core.FillSequential); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Extension benchmarks (future-work subsystems)
// ---------------------------------------------------------------------

// BenchmarkAblationSurrogate contrasts the exact simulator against the
// fitted surrogate on the same placement query; metrics: the speedup and
// the surrogate's held-out decision accuracy.
func BenchmarkAblationSurrogate(b *testing.B) {
	svc, err := core.NewService(routine.CNN, 5*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	cfg := surrogate.DefaultConfig(svc)
	cfg.Samples = 200
	sur, err := surrogate.Fit(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := sur.Evaluate(cfg, 100, 7)
	if err != nil {
		b.Fatal(err)
	}

	exactStart := time.Now()
	const queries = 1000
	for i := 0; i < queries; i++ {
		if _, err := core.SimulateEdgeCloud(100+i, core.DefaultServer(35), svc,
			core.Losses{}, core.FillSequential, nil); err != nil {
			b.Fatal(err)
		}
	}
	exact := time.Since(exactStart)
	fastStart := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := sur.Predict(100+i, 35, false, false); err != nil {
			b.Fatal(err)
		}
	}
	fast := time.Since(fastStart)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sur.Predict(500, 35, false, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(exact)/float64(fast), "speedup_x")
	b.ReportMetric(ev.DecisionAccuracy, "decision_accuracy")
}

// BenchmarkServiceBundlePlanning measures the multi-service planner.
func BenchmarkServiceBundlePlanning(b *testing.B) {
	bundle := services.Bundle{
		Kinds: []services.Kind{
			services.QueenDetection, services.PollenDetection,
			services.BeeCounting, services.SwarmPrediction,
		},
		Period: 30 * time.Minute,
	}
	var offloaded float64
	for i := 0; i < b.N; i++ {
		plan, err := services.PlanBundle(bundle, 2000, core.DefaultServer(35), core.Losses{})
		if err != nil {
			b.Fatal(err)
		}
		offloaded = 0
		for _, p := range plan.Decisions {
			if p == routine.EdgeCloud {
				offloaded++
			}
		}
	}
	b.ReportMetric(offloaded, "services_offloaded")
}

// BenchmarkAdaptivePolicies runs the week-long policy comparison;
// metric: the forecast policy's data-yield gain over the fixed 10-minute
// baseline.
func BenchmarkAdaptivePolicies(b *testing.B) {
	cfg := adaptive.DefaultConfig()
	cfg.Days = 3
	var gain float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.PolicyComparison(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(results[3].Routines) / float64(results[0].Routines)
	}
	b.ReportMetric(gain, "yield_vs_fixed10m")
}

// BenchmarkBeeCounting measures the vision service on one entrance
// image; metric: absolute counting error on a 10-bee scene.
func BenchmarkBeeCounting(b *testing.B) {
	scene, err := vision.Synthesize(vision.DefaultScene(10))
	if err != nil {
		b.Fatal(err)
	}
	var got int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got = vision.CountBees(scene.Image)
	}
	err10 := math.Abs(float64(got - 10))
	b.ReportMetric(err10, "count_error")
}

// BenchmarkPipingScore measures the swarm service's audio analysis.
func BenchmarkPipingScore(b *testing.B) {
	synth, err := audio.NewSynth(audio.Config{SampleRate: 22050, Seconds: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	clip := synth.Clip(2, 0.6) // QueenPiping
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := swarm.PipingScore(clip, 22050); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkedCycle measures one full edge+cloud cycle over
// loopback TCP (handshake excluded).
func BenchmarkNetworkedCycle(b *testing.B) {
	cfg := hivenet.DefaultServerConfig()
	cfg.TrainCorpus = 20
	server, err := hivenet.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		b.Fatal(err)
	}
	go server.Serve() //nolint:errcheck
	defer server.Close()
	agent, err := hivenet.Dial(server.Addr(), hivenet.DefaultAgentConfig("bench"))
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	now := time.Now().UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agent.RunCycle(0, 0.6, now); err != nil { // QueenPresent
			b.Fatal(err)
		}
	}
}

// BenchmarkSeasonal runs the 12-month energy-balance study at one day
// per month; metric: the June/December harvest ratio.
func BenchmarkSeasonal(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Seasonal(solar.Cachan, 1, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		var june, december float64
		for _, p := range pts {
			switch p.Month {
			case time.June:
				june = float64(p.HarvestPerDay)
			case time.December:
				december = float64(p.HarvestPerDay)
			}
		}
		ratio = june / december
	}
	b.ReportMetric(ratio, "june_vs_december_harvest")
}

// ---------------------------------------------------------------------
// Observability overhead (docs/OBSERVABILITY.md §overhead)
// ---------------------------------------------------------------------

// desLoop drives one simulated event loop: 1000 one-second ticks from a
// fresh calendar. setup attaches (or not) the observability probes.
func desLoop(b *testing.B, setup func(*des.Sim)) {
	b.Helper()
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		s := des.New(start)
		if setup != nil {
			setup(s)
		}
		ticks := 0
		stop, err := s.Every(time.Second, func() { ticks++ })
		if err != nil {
			b.Fatal(err)
		}
		s.Run(start.Add(1000 * time.Second))
		stop()
		if ticks != 1000 {
			b.Fatalf("ticks = %d, want 1000", ticks)
		}
	}
}

// BenchmarkDESLoopBare is the engine with no observability pointer set —
// the baseline all other DESLoop benchmarks are compared against.
func BenchmarkDESLoopBare(b *testing.B) {
	desLoop(b, nil)
}

// BenchmarkDESLoopObsDisabled measures the disabled configuration a run
// without -metrics/-trace takes (Instrument with nil registry and
// tracer): the acceptance bar is <= 5% over BenchmarkDESLoopBare.
func BenchmarkDESLoopObsDisabled(b *testing.B) {
	desLoop(b, func(s *des.Sim) { des.Instrument(s, nil, nil, false) })
}

// BenchmarkDESLoopLedgerNil measures the DES loop with a disabled
// (nil) energy ledger consulted on every tick — the configuration a
// run without -ledger takes. The instrumented packages (battery,
// deployment, netsim) all guard entry construction behind a nil check,
// so the disabled cost per tick is one pointer comparison; the
// acceptance bar is <= 5% over BenchmarkDESLoopBare.
func BenchmarkDESLoopLedgerNil(b *testing.B) {
	var lg *ledger.Ledger
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		s := des.New(start)
		ticks := 0
		stop, err := s.Every(time.Second, func() {
			ticks++
			if lg != nil {
				lg.Append(ledger.Entry{
					T: s.Now(), Hive: "bench", Device: "edge", Component: "pi3b",
					Task: "tick", Dir: ledger.Consume, Joules: 1, Store: "battery",
				})
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run(start.Add(1000 * time.Second))
		stop()
		if ticks != 1000 {
			b.Fatalf("ticks = %d, want 1000", ticks)
		}
	}
}

// BenchmarkDESLoopObsMetrics measures a live registry counting every
// scheduled/fired event (no tracing).
func BenchmarkDESLoopObsMetrics(b *testing.B) {
	desLoop(b, func(s *des.Sim) { des.Instrument(s, obs.NewRegistry(), nil, false) })
}

// BenchmarkDESLoopObsFullTrace measures the most expensive setting: live
// metrics plus a per-event Chrome trace timeline.
func BenchmarkDESLoopObsFullTrace(b *testing.B) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	desLoop(b, func(s *des.Sim) {
		des.Instrument(s, obs.NewRegistry(), obs.NewTracer(start), true)
	})
}

// BenchmarkDESLoopSteady isolates the event-arena steady state: unlike
// the other DESLoop benchmarks it builds the calendar once outside the
// timer, so each iteration measures 1000 recurring ticks on a warm
// free list — the pooled-event path with zero allocations per tick.
func BenchmarkDESLoopSteady(b *testing.B) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	s := des.New(start)
	ticks := 0
	if _, err := s.Every(time.Second, func() { ticks++ }); err != nil {
		b.Fatal(err)
	}
	s.RunFor(1000 * time.Second) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunFor(1000 * time.Second)
	}
	if ticks < 1000*(b.N+1) {
		b.Fatalf("ticks = %d", ticks)
	}
}

// BenchmarkOptimizer searches the full orchestration grid for a
// 2000-hive, two-service fleet; metric: the optimum's daily fleet energy
// in megajoules.
func BenchmarkOptimizer(b *testing.B) {
	req := optimizer.Requirements{
		Hives:        2000,
		Services:     []services.Kind{services.QueenDetection, services.BeeCounting},
		MaxStaleness: time.Hour,
	}
	var mj float64
	for i := 0; i < b.N; i++ {
		res, err := optimizer.Optimize(req, optimizer.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		mj = float64(res.Best.PerDay) / 1e6
	}
	b.ReportMetric(mj, "MJ/day")
}
