package beesim

// This file extends the façade with the subsystems built beyond the
// paper's figures: the multi-service catalog, the adaptive controller,
// the learned simulation surrogate, the swarm predictor, the vision
// services, the networked agent/server pair and the data archive.

import (
	"beesim/internal/adaptive"
	"beesim/internal/experiments"
	"beesim/internal/hivenet"
	"beesim/internal/optimizer"
	"beesim/internal/services"
	"beesim/internal/solar"
	"beesim/internal/store"
	"beesim/internal/surrogate"
	"beesim/internal/swarm"
	"beesim/internal/vision"
)

// Service catalog (beyond queen detection, the paper's "pollen
// detection, counting bees, and swarm prediction, among others").
type (
	// ServiceKind identifies a catalog service.
	ServiceKind = services.Kind
	// ServiceProfile is one service's resource footprint.
	ServiceProfile = services.Profile
	// ServiceBundle is the set of services one hive runs per cycle.
	ServiceBundle = services.Bundle
	// ServicePlan assigns each bundled service to a placement.
	ServicePlan = services.PlacementPlan
)

// Catalog service kinds.
const (
	QueenDetectionService  = services.QueenDetection
	PollenDetectionService = services.PollenDetection
	BeeCountingService     = services.BeeCounting
	SwarmPredictionService = services.SwarmPrediction
)

// ServiceCatalog returns the profile of a catalog service.
func ServiceCatalog(k ServiceKind) (ServiceProfile, error) { return services.Catalog(k) }

// PlanServices decides per-service placements for a bundle and fleet.
func PlanServices(b ServiceBundle, hives int, server ServerSpec, l Losses) (ServicePlan, error) {
	return services.PlanBundle(b, hives, server, l)
}

// Adaptive orchestration (the paper's future work).
type (
	// AdaptivePolicy decides each cycle's period and placement.
	AdaptivePolicy = adaptive.Policy
	// AdaptiveResult summarizes one simulated policy run.
	AdaptiveResult = adaptive.Result
	// AdaptiveConfig shapes a policy simulation.
	AdaptiveConfig = adaptive.Config
)

// ThresholdPolicy returns the battery-band controller.
func ThresholdPolicy() AdaptivePolicy { return adaptive.DefaultThreshold() }

// ForecastPolicy returns the solar-forecast controller.
func ForecastPolicy() AdaptivePolicy { return adaptive.DefaultForecast() }

// SimulatePolicy runs one controller through simulated weather.
func SimulatePolicy(cfg AdaptiveConfig, p AdaptivePolicy) (AdaptiveResult, error) {
	return adaptive.Simulate(cfg, p)
}

// DefaultAdaptiveConfig simulates a week in Cachan from a half-charged
// battery.
func DefaultAdaptiveConfig() AdaptiveConfig { return adaptive.DefaultConfig() }

// Learned simulation surrogate (the paper's future work).
type (
	// Surrogate is a fitted fast predictor of the scale simulator.
	Surrogate = surrogate.Surrogate
	// SurrogateConfig shapes surrogate training.
	SurrogateConfig = surrogate.Config
)

// FitSurrogate samples the exact simulator and fits the fast model.
func FitSurrogate(cfg SurrogateConfig) (*Surrogate, error) { return surrogate.Fit(cfg) }

// DefaultSurrogateConfig samples the Figures 6-9 input space.
func DefaultSurrogateConfig(svc Service) SurrogateConfig { return surrogate.DefaultConfig(svc) }

// Swarm prediction.
type (
	// SwarmPredictor accumulates piping evidence into a swarm risk.
	SwarmPredictor = swarm.Predictor
	// SwarmObservation is one cycle's inputs to the predictor.
	SwarmObservation = swarm.Observation
)

// PipingScore measures queen piping in a clip, in [0, 1].
func PipingScore(clip []float64, sampleRate int) (float64, error) {
	return swarm.PipingScore(clip, sampleRate)
}

// NewSwarmPredictor returns a predictor with the default tuning.
func NewSwarmPredictor() (*SwarmPredictor, error) {
	return swarm.NewPredictor(swarm.DefaultPredictor())
}

// Vision services.
type (
	// EntranceScene is a synthesized entrance image with ground truth.
	EntranceScene = vision.Scene
	// GrayImage is a grayscale image in [0, 1].
	GrayImage = vision.Gray
)

// SynthesizeEntranceImage renders an entrance image with the given
// number of bees.
func SynthesizeEntranceImage(bees int, seed uint64) (*EntranceScene, error) {
	cfg := vision.DefaultScene(bees)
	cfg.Seed = seed
	return vision.Synthesize(cfg)
}

// CountBees runs the bee-counting service on an entrance image.
func CountBees(img *GrayImage) int { return vision.CountBees(img) }

// DetectPollen counts pollen-carrying bees in an entrance image.
func DetectPollen(img *GrayImage) int { return vision.DetectPollen(img) }

// Networked realization.
type (
	// CloudServer is the TCP queen-detection service.
	CloudServer = hivenet.Server
	// EdgeAgent is the TCP smart-beehive client.
	EdgeAgent = hivenet.Agent
	// CloudServerConfig shapes the server.
	CloudServerConfig = hivenet.ServerConfig
	// EdgeAgentConfig shapes an agent.
	EdgeAgentConfig = hivenet.AgentConfig
	// Archive is the cloud's append-only data store.
	Archive = store.Store
)

// NewCloudServer trains the service model and binds a listener.
func NewCloudServer(addr string, cfg CloudServerConfig) (*CloudServer, error) {
	//beelint:allow walltime live TCP service facade; uptime anchors to real time, not des.Sim
	return hivenet.NewServer(addr, cfg)
}

// DialCloud connects an edge agent to a cloud server.
func DialCloud(addr string, cfg EdgeAgentConfig) (*EdgeAgent, error) {
	return hivenet.Dial(addr, cfg)
}

// DefaultCloudServerConfig mirrors the paper's Figure-6 slot shape.
func DefaultCloudServerConfig() CloudServerConfig { return hivenet.DefaultServerConfig() }

// DefaultEdgeAgentConfig returns an edge+cloud agent at the paper's
// cadence.
func DefaultEdgeAgentConfig(hiveID string) EdgeAgentConfig {
	return hivenet.DefaultAgentConfig(hiveID)
}

// Extension experiments.
var (
	// Seasonal summarizes the deployment's energy balance per month.
	Seasonal = experiments.Seasonal
	// Apiary runs the paper's five-hive deployment.
	Apiary = experiments.Apiary
	// PolicyComparison contrasts fixed and adaptive orchestration.
	PolicyComparison = experiments.PolicyComparison
)

// Deployment sites of the paper.
var (
	Cachan = solar.Cachan
	Lyon   = solar.Lyon
)

// Orchestration optimizer.
type (
	// OptimizerRequirements state a fleet's needs.
	OptimizerRequirements = optimizer.Requirements
	// OptimizerResult carries the optimum and the Pareto frontier.
	OptimizerResult = optimizer.Result
)

// Optimize searches wake period x slot capacity x placement for the
// least-energy configuration meeting the freshness requirement.
func Optimize(req OptimizerRequirements) (OptimizerResult, error) {
	return optimizer.Optimize(req, optimizer.DefaultOptions())
}
