package beesim

// Benchmarks for the deterministic parallel execution layer
// (internal/parallel). The pairs below measure the two levers the
// layer pulls: fan-out across cores (Serial vs Parallel) and memoized
// DSP precomputation (Cold vs Cached). `make bench-baseline` snapshots
// them into BENCH_parallel.json; docs/PERFORMANCE.md explains how to
// read the numbers.

import (
	"testing"
	"time"

	"beesim/internal/dsp"
	"beesim/internal/experiments"
	"beesim/internal/optimizer"
	"beesim/internal/rng"
	"beesim/internal/services"
)

// benchSweepConfig is the Figure 9 sweep (1901 points, per-point loss
// sampling) — the heaviest figure and the tentpole fan-out workload.
func benchSweepConfig(b *testing.B) experiments.SweepConfig {
	b.Helper()
	cfg, err := experiments.Figure9Config()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

func benchSweep(b *testing.B, workers int) {
	cfg := benchSweepConfig(b)
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial pins the legacy single-goroutine path
// (workers=1); BenchmarkSweepParallel uses every core. The ratio is
// the layer's headline speedup — byte-identical output is pinned
// separately by TestSweepDeterministicAcrossWorkers.
func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkOptimizeParallel drives the full optimizer grid search with
// all cores; compare against BenchmarkFigure11Optimize (workers
// unset → also parallel now) or rerun with Workers=1 to see the
// serial cost.
func BenchmarkOptimizeParallel(b *testing.B) {
	req := optimizer.Requirements{
		Hives:        500,
		Services:     services.AllKinds(),
		MaxStaleness: 4 * time.Hour,
		Losses:       PaperLosses(true, true, true),
	}
	opts := optimizer.DefaultOptions()
	opts.Workers = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.Optimize(req, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClip synthesizes one labeled clip for the DSP benchmarks.
func benchClip(b *testing.B) []float64 {
	b.Helper()
	corpus, err := SynthesizeCorpus(DefaultAudioConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return corpus[0].Samples
}

func benchMel(b *testing.B, cold bool) {
	clip := benchClip(b)
	cfg := dsp.PaperSTFT()
	if _, err := dsp.MelSpectrogram(clip, cfg, 128, 22050); err != nil { // warm once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cold {
			dsp.ResetCaches()
		}
		if _, err := dsp.MelSpectrogram(clip, cfg, 128, 22050); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMelSpectrogramCold rebuilds the Hann window, FFT twiddle
// tables and mel filterbank every iteration; Cached reuses the
// memoized tables. The delta is what the (fftSize, nMels, sampleRate)
// keyed caches save per clip.
func BenchmarkMelSpectrogramCold(b *testing.B)   { benchMel(b, true) }
func BenchmarkMelSpectrogramCached(b *testing.B) { benchMel(b, false) }

// BenchmarkMelSpectrogramPlan is the fully-amortized front end: a
// prebuilt Plan and a reused destination matrix, the steady-state
// configuration of a per-clip feature loop. The gap to Cached is the
// remaining per-call cost of the memo lookups and output allocation.
func BenchmarkMelSpectrogramPlan(b *testing.B) {
	clip := benchClip(b)
	plan, err := dsp.PlanFor(dsp.PaperSTFT(), 128, 22050)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := plan.MelSpectrogram(clip) // warm plan scratch + shape dst
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = plan.MelSpectrogramInto(dst, clip); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRFFT measures one packed real transform at the paper's
// frame size (2048 samples -> 1025 bins) through the no-alloc entry
// point — the innermost kernel of every spectrogram.
func BenchmarkRFFT(b *testing.B) {
	r := rng.New(7)
	x := make([]float64, 2048)
	for i := range x {
		x[i] = r.Norm()
	}
	dst := make([]complex128, len(x)/2+1)
	if _, err := dsp.RFFTInto(dst, x); err != nil { // warm twiddles
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.RFFTInto(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel runs the Section-IV daily-routine Monte
// Carlo campaign (319 replicas, batched 64 per rng stream) across all
// cores.
func BenchmarkCampaignParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RoutineStatsWorkers(319, 0); err != nil {
			b.Fatal(err)
		}
	}
}
